//! Theorem 5.2 in full generality: exact optimality conditions for
//! *arbitrary* (asymmetric) single-threshold algorithms.
//!
//! For a fixed threshold vector, the winning probability viewed as a
//! function of one coordinate `a_k` is a piecewise polynomial — the
//! inclusion–exclusion indicators of Theorem 5.1 flip only where a
//! subset sum crosses `δ` (bin 0) or where `|J| = m − δ + Σ_J a_l`
//! (bin 1). This module constructs that piecewise polynomial exactly,
//! which yields:
//!
//! * [`partial_piecewise`] — `P(a_k)` with the other coordinates
//!   frozen, as an exact `PiecewisePolynomial`;
//! * [`optimality_gradient`] — the exact gradient `∂P/∂a_k` at a
//!   point, the paper's Theorem 5.2 conditions (an optimal interior
//!   algorithm must zero it);
//! * [`coordinate_optimal`] — the exact best response in one
//!   coordinate, enabling certified coordinate ascent.

use crate::{Capacity, ModelError, SingleThresholdAlgorithm};
use polynomial::{PiecewisePolynomial, Polynomial};
use rational::Rational;
use uniform_sums::EvalContext;

/// Largest player count for the symbolic `2^n`-subset construction.
const MAX_SYMBOLIC_PLAYERS: usize = 12;

/// The winning probability as an exact piecewise polynomial in the
/// `k`-th threshold, all other thresholds frozen at their values in
/// `algo`.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`
/// (the construction enumerates subsets of players).
///
/// # Panics
///
/// Panics if `k >= n` — the player index must name one of the
/// algorithm's thresholds.
///
/// # Examples
///
/// ```
/// use decision::{conditions, Capacity, SingleThresholdAlgorithm};
/// use rational::Rational;
///
/// let algo = SingleThresholdAlgorithm::symmetric(3, Rational::ratio(1, 2)).unwrap();
/// let curve = conditions::partial_piecewise(&algo, 0, &Capacity::unit()).unwrap();
/// // Evaluating at x reproduces the direct winning probability with
/// // a_0 = x.
/// let x = Rational::ratio(3, 4);
/// let direct = decision::winning_probability_threshold(
///     &SingleThresholdAlgorithm::new(vec![
///         x.clone(), Rational::ratio(1, 2), Rational::ratio(1, 2),
///     ]).unwrap(),
///     &Capacity::unit(),
/// ).unwrap();
/// assert_eq!(curve.eval(&x), Some(direct));
/// ```
pub fn partial_piecewise(
    algo: &SingleThresholdAlgorithm,
    k: usize,
    capacity: &Capacity,
) -> Result<PiecewisePolynomial<Rational>, ModelError> {
    let mut ctx = EvalContext::new();
    partial_piecewise_with(&mut ctx, algo, k, capacity)
}

/// [`partial_piecewise`] with a caller-supplied [`EvalContext`]: the
/// factorial normalizers of the Lemma 2.4/2.7 products come from the
/// context's cached tables, so repeated curve constructions (e.g. a
/// full gradient, or certified coordinate ascent) share them.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`.
///
/// # Panics
///
/// Panics if `k >= n`.
pub fn partial_piecewise_with(
    ctx: &mut EvalContext<Rational>,
    algo: &SingleThresholdAlgorithm,
    k: usize,
    capacity: &Capacity,
) -> Result<PiecewisePolynomial<Rational>, ModelError> {
    let n = algo.n();
    assert!(k < n, "player index out of range");
    if n > MAX_SYMBOLIC_PLAYERS {
        return Err(ModelError::TooManyPlayersForExact {
            n,
            max: MAX_SYMBOLIC_PLAYERS,
        });
    }
    let delta = capacity.value();
    let others: Vec<Rational> = algo
        .thresholds()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != k)
        .map(|(_, a)| a.clone())
        .collect();

    let breakpoints = breakpoints_in_x(&others, n, delta);
    let mut pieces = Vec::with_capacity(breakpoints.len() - 1);
    for window in breakpoints.windows(2) {
        let probe = window[0].midpoint(&window[1]);
        pieces.push(piece_in_x(ctx, &others, delta, &probe));
    }
    Ok(PiecewisePolynomial::new(breakpoints, pieces))
}

/// The exact gradient `(∂P/∂a_1, …, ∂P/∂a_n)` at the algorithm's
/// threshold vector — Theorem 5.2's optimality conditions. At an
/// interior optimum every entry is zero.
///
/// At a break-point of the piecewise structure the one-sided (left)
/// derivative is reported, matching the `(lo, hi]` piece convention.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`.
///
/// # Examples
///
/// ```
/// use decision::{conditions, Capacity, SingleThresholdAlgorithm};
/// use rational::Rational;
///
/// // At β = 1/2 < β* the symmetric gradient pushes every threshold up.
/// let algo = SingleThresholdAlgorithm::symmetric(3, Rational::ratio(1, 2)).unwrap();
/// let grad = conditions::optimality_gradient(&algo, &Capacity::unit()).unwrap();
/// assert!(grad.iter().all(Rational::is_positive));
/// ```
pub fn optimality_gradient(
    algo: &SingleThresholdAlgorithm,
    capacity: &Capacity,
) -> Result<Vec<Rational>, ModelError> {
    let mut ctx = EvalContext::new();
    optimality_gradient_with(&mut ctx, algo, capacity)
}

/// [`optimality_gradient`] with a caller-supplied [`EvalContext`]
/// shared across the `n` per-coordinate curve constructions.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`.
pub fn optimality_gradient_with(
    ctx: &mut EvalContext<Rational>,
    algo: &SingleThresholdAlgorithm,
    capacity: &Capacity,
) -> Result<Vec<Rational>, ModelError> {
    (0..algo.n())
        .map(|k| {
            let curve = partial_piecewise_with(ctx, algo, k, capacity)?;
            let x = &algo.thresholds()[k];
            let piece = curve.piece_index(x).expect("threshold in [0,1]"); // xtask:allow(no-panic): constructor keeps thresholds inside the curve domain
            Ok(curve.pieces()[piece].derivative().eval(x))
        })
        .collect()
}

/// The exact best response in coordinate `k`: the threshold value in
/// `[0, 1]` maximizing `P` with all other coordinates frozen, found by
/// exact maximization of the piecewise polynomial.
///
/// Returns `(argmax, value)`; the argmax is exact when rational and a
/// `tol`-refined rational enclosure point otherwise.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`.
pub fn coordinate_optimal(
    algo: &SingleThresholdAlgorithm,
    k: usize,
    capacity: &Capacity,
    tol: &Rational,
) -> Result<(Rational, Rational), ModelError> {
    let mut ctx = EvalContext::new();
    coordinate_optimal_with(&mut ctx, algo, k, capacity, tol)
}

/// [`coordinate_optimal`] with a caller-supplied [`EvalContext`], for
/// ascent loops that solve many best-response subproblems in a row.
///
/// # Errors
///
/// Returns [`ModelError::TooManyPlayersForExact`] if `n > 12`.
pub fn coordinate_optimal_with(
    ctx: &mut EvalContext<Rational>,
    algo: &SingleThresholdAlgorithm,
    k: usize,
    capacity: &Capacity,
    tol: &Rational,
) -> Result<(Rational, Rational), ModelError> {
    let curve = partial_piecewise_with(ctx, algo, k, capacity)?;
    let report = curve.maximize(tol);
    Ok((report.argmax, report.value))
}

/// Candidate break-points of `P(x)` in `(0, 1)`, where `x` stands for
/// the distinguished player's threshold:
///
/// * bin-0 indicators flip at `x = δ − Σ_S a_l` for subsets `S` of the
///   other players;
/// * bin-1 indicators flip at `x = j − m + δ − Σ_T a_l` where
///   `T ⊆ others`, `j = |T| + 1` counts the subset including the
///   distinguished player, and `m ∈ {j..n}` ranges over possible
///   bin-1 sizes.
fn breakpoints_in_x(others: &[Rational], n: usize, delta: &Rational) -> Vec<Rational> {
    let zero = Rational::zero();
    let one = Rational::one();
    let mut points = vec![zero.clone(), one.clone()];
    let w = others.len();
    for mask in 0usize..(1 << w) {
        let sum: Rational = (0..w)
            .filter(|l| mask >> l & 1 == 1)
            .map(|l| others[l].clone())
            .sum();
        let candidate = delta - &sum;
        if candidate > zero && candidate < one {
            points.push(candidate);
        }
        let j = mask.count_ones() as i64 + 1;
        for m in j..=n as i64 {
            let candidate = Rational::integer(j - m) + delta - &sum;
            if candidate > zero && candidate < one {
                points.push(candidate);
            }
        }
    }
    points.sort();
    points.dedup();
    points
}

/// Assembles the exact polynomial in `x` valid around `probe`:
/// sum over decisions of the other players and the two placements of
/// the distinguished player.
fn piece_in_x(
    ctx: &mut EvalContext<Rational>,
    others: &[Rational],
    delta: &Rational,
    probe: &Rational,
) -> Polynomial<Rational> {
    let w = others.len();
    let mut total = Polynomial::zero();
    for mask in 0usize..(1 << w) {
        let bin0: Vec<Rational> = (0..w)
            .filter(|l| mask >> l & 1 == 0)
            .map(|l| others[l].clone())
            .collect();
        let bin1: Vec<Rational> = (0..w)
            .filter(|l| mask >> l & 1 == 1)
            .map(|l| others[l].clone())
            .collect();
        // Distinguished player in bin 0: A is symbolic, B constant.
        let a_sym = lemma_2_4_product(ctx, &bin0, true, delta, probe);
        let b_const = lemma_2_7_product(ctx, &bin1, false, delta, probe);
        total = &total + &(&a_sym * &b_const);
        // Distinguished player in bin 1: A constant, B symbolic.
        let a_const = lemma_2_4_product(ctx, &bin0, false, delta, probe);
        let b_sym = lemma_2_7_product(ctx, &bin1, true, delta, probe);
        total = &total + &(&a_const * &b_sym);
    }
    total
}

/// `P(bin-0 choice) · P(Σ₀ ≤ δ | bin 0)` as a polynomial in `x`
/// (Lemma 2.4 with the decision probability absorbed):
/// `(1/m!) Σ_{I: Σ_I < δ at probe} (−1)^{|I|} (δ − Σ_I)^m`,
/// where the group is `widths` plus, when `with_x`, the symbolic
/// threshold `x`.
fn lemma_2_4_product(
    ctx: &mut EvalContext<Rational>,
    widths: &[Rational],
    with_x: bool,
    delta: &Rational,
    probe: &Rational,
) -> Polynomial<Rational> {
    let m = widths.len() + usize::from(with_x);
    if m == 0 {
        return Polynomial::one();
    }
    let w = widths.len();
    let mut acc = Polynomial::zero();
    for mask in 0usize..(1 << w) {
        let base: Rational = (0..w)
            .filter(|l| mask >> l & 1 == 1)
            .map(|l| widths[l].clone())
            .sum();
        let base_size = mask.count_ones() as usize;
        for include_x in [false, true] {
            if include_x && !with_x {
                continue;
            }
            // Indicator Σ_I < δ evaluated with x = probe.
            let at_probe = if include_x {
                &base + probe
            } else {
                base.clone()
            };
            if &at_probe >= delta {
                continue;
            }
            // (δ − base − [x]) ^ m as a polynomial in x.
            let linear = Polynomial::new(vec![
                delta - &base,
                if include_x {
                    -Rational::one()
                } else {
                    Rational::zero()
                },
            ]);
            let term = linear.pow(m as u32);
            if (base_size + usize::from(include_x)).is_multiple_of(2) {
                acc = &acc + &term;
            } else {
                acc = &acc - &term;
            }
        }
    }
    acc.scale(&ctx.factorial(m as u32).recip())
}

/// `P(bin-1 choice) · P(Σ₁ ≤ δ | bin 1)` as a polynomial in `x`
/// (Lemma 2.7 with the decision probability absorbed):
/// `Π (1−a_l) − (1/m!) Σ_{J: |J| < m−δ+Σ_J at probe}
/// (−1)^{|J|} (m − δ − |J| + Σ_J)^m`.
fn lemma_2_7_product(
    ctx: &mut EvalContext<Rational>,
    thresholds: &[Rational],
    with_x: bool,
    delta: &Rational,
    probe: &Rational,
) -> Polynomial<Rational> {
    let m = thresholds.len() + usize::from(with_x);
    if m == 0 {
        return Polynomial::one();
    }
    let m_rat = Rational::integer(m as i64);
    // Leading product Π (1 − a_l), symbolic in x when included.
    let mut lead = Polynomial::constant(
        thresholds
            .iter()
            .map(|a| Rational::one() - a)
            .product::<Rational>(),
    );
    if with_x {
        lead = &lead * &Polynomial::new(vec![Rational::one(), -Rational::one()]);
    }

    let w = thresholds.len();
    let mut acc = Polynomial::zero();
    for mask in 0usize..(1 << w) {
        let base: Rational = (0..w)
            .filter(|l| mask >> l & 1 == 1)
            .map(|l| thresholds[l].clone())
            .sum();
        let base_size = mask.count_ones() as i64;
        for include_x in [false, true] {
            if include_x && !with_x {
                continue;
            }
            let j = base_size + i64::from(include_x);
            // Indicator j < m − δ + Σ_J with x = probe.
            let sum_at_probe = if include_x {
                &base + probe
            } else {
                base.clone()
            };
            if Rational::integer(j) >= &m_rat - delta + &sum_at_probe {
                continue;
            }
            // (m − δ − j + base + [x]) ^ m as a polynomial in x.
            let constant = &m_rat - delta - Rational::integer(j) + &base;
            let linear = Polynomial::new(vec![
                constant,
                if include_x {
                    Rational::one()
                } else {
                    Rational::zero()
                },
            ]);
            let term = linear.pow(m as u32);
            if j % 2 == 0 {
                acc = &acc + &term;
            } else {
                acc = &acc - &term;
            }
        }
    }
    &lead - &acc.scale(&ctx.factorial(m as u32).recip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::winning_probability_threshold;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    fn unit() -> Capacity {
        Capacity::unit()
    }

    #[test]
    fn partial_matches_direct_evaluation_asymmetric() {
        let base = SingleThresholdAlgorithm::new(vec![r(1, 2), r(2, 3), r(1, 4)]).unwrap();
        for k in 0..3 {
            let curve = partial_piecewise(&base, k, &unit()).unwrap();
            assert!(curve.is_continuous(), "k = {k}");
            for num in 0..=10 {
                let x = r(num, 10);
                let mut thresholds = base.thresholds().to_vec();
                thresholds[k] = x.clone();
                let direct = winning_probability_threshold(
                    &SingleThresholdAlgorithm::new(thresholds).unwrap(),
                    &unit(),
                )
                .unwrap();
                assert_eq!(curve.eval(&x).unwrap(), direct, "k={k}, x={x}");
            }
        }
    }

    #[test]
    fn symmetric_gradient_sums_to_total_derivative() {
        // Chain rule along the diagonal: dP(β)/dβ = Σ_k ∂P/∂a_k.
        for n in [3usize, 4] {
            let cap = unit();
            let pw = crate::symmetric::analyze(n, &cap).unwrap();
            for (num, den) in [(2i64, 5i64), (1, 2), (7, 10)] {
                let beta = r(num, den);
                let algo = SingleThresholdAlgorithm::symmetric(n, beta.clone()).unwrap();
                let grad = optimality_gradient(&algo, &cap).unwrap();
                let total: Rational = grad.iter().sum();
                let piece = pw.piece_index(&beta).unwrap();
                let dbeta = pw.pieces()[piece].derivative().eval(&beta);
                assert_eq!(total, dbeta, "n={n}, β={beta}");
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let algo =
            SingleThresholdAlgorithm::new(vec![r(2, 5), r(3, 5), r(1, 2), r(7, 10)]).unwrap();
        let cap = Capacity::new(r(4, 3)).unwrap();
        let grad = optimality_gradient(&algo, &cap).unwrap();
        let h = r(1, 1_000_000);
        for k in 0..4 {
            let mut up = algo.thresholds().to_vec();
            up[k] = &up[k] + &h;
            let mut down = algo.thresholds().to_vec();
            down[k] = &down[k] - &h;
            let p_up =
                winning_probability_threshold(&SingleThresholdAlgorithm::new(up).unwrap(), &cap)
                    .unwrap();
            let p_down =
                winning_probability_threshold(&SingleThresholdAlgorithm::new(down).unwrap(), &cap)
                    .unwrap();
            let numeric = (p_up - p_down) / (r(2, 1) * h.clone());
            let diff = (&grad[k] - &numeric).abs();
            assert!(
                diff < r(1, 1000),
                "k={k}: exact {} vs numeric {}",
                grad[k],
                numeric
            );
        }
    }

    #[test]
    fn gradient_nearly_vanishes_at_the_known_optimum() {
        // β* = 1 − √(1/7) is irrational; at a tight rational
        // approximation every partial derivative must be tiny.
        let beta = r(622_035_527, 1_000_000_000);
        let algo = SingleThresholdAlgorithm::symmetric(3, beta).unwrap();
        let grad = optimality_gradient(&algo, &unit()).unwrap();
        for g in &grad {
            assert!(g.abs() < r(1, 100_000_000), "residual {g}");
        }
    }

    #[test]
    fn coordinate_best_response_improves() {
        let start = SingleThresholdAlgorithm::symmetric(3, r(1, 4)).unwrap();
        let cap = unit();
        let before = winning_probability_threshold(&start, &cap).unwrap();
        let (argmax, value) = coordinate_optimal(&start, 0, &cap, &r(1, 1 << 30)).unwrap();
        assert!(value >= before);
        let mut improved = start.thresholds().to_vec();
        improved[0] = argmax;
        let direct =
            winning_probability_threshold(&SingleThresholdAlgorithm::new(improved).unwrap(), &cap)
                .unwrap();
        assert_eq!(direct, value);
    }

    #[test]
    fn rejects_oversized_systems() {
        let algo = SingleThresholdAlgorithm::symmetric(13, r(1, 2)).unwrap();
        assert!(matches!(
            partial_piecewise(&algo, 0, &unit()),
            Err(ModelError::TooManyPlayersForExact { .. })
        ));
    }
}
