//! Property tests for the decision core: probability axioms,
//! symmetry, monotonicity in capacity, and agreement between the
//! symbolic and direct pipelines.

use decision::{
    oblivious, symmetric, winning_probability_oblivious, winning_probability_oblivious_f64,
    winning_probability_oblivious_in, winning_probability_threshold,
    winning_probability_threshold_f64, winning_probability_threshold_in, Capacity, EvalContext,
    ObliviousAlgorithm, SingleThresholdAlgorithm,
};
use proptest::prelude::*;
use rational::{Ball, Rational};

fn unit_rational() -> impl Strategy<Value = Rational> {
    (0i64..=12, 12i64..=12).prop_map(|(n, d)| Rational::ratio(n, d))
}

fn capacity() -> impl Strategy<Value = Capacity> {
    (1i64..9, 1i64..4).prop_map(|(n, d)| Capacity::new(Rational::ratio(n, d)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn oblivious_probability_in_unit_interval(
        alpha in proptest::collection::vec(unit_rational(), 2..6),
        cap in capacity(),
    ) {
        let algo = ObliviousAlgorithm::new(alpha).unwrap();
        let p = winning_probability_oblivious(&algo, &cap).unwrap();
        prop_assert!(!p.is_negative() && p <= Rational::one());
    }

    #[test]
    fn threshold_probability_in_unit_interval(
        a in proptest::collection::vec(unit_rational(), 2..6),
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a).unwrap();
        let p = winning_probability_threshold(&algo, &cap).unwrap();
        prop_assert!(!p.is_negative() && p <= Rational::one());
    }

    #[test]
    fn winning_probability_monotone_in_capacity(
        a in proptest::collection::vec(unit_rational(), 2..5),
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a).unwrap();
        let bigger = Capacity::new(cap.value() + Rational::ratio(1, 3)).unwrap();
        let p1 = winning_probability_threshold(&algo, &cap).unwrap();
        let p2 = winning_probability_threshold(&algo, &bigger).unwrap();
        prop_assert!(p2 >= p1);
    }

    #[test]
    fn permuting_players_preserves_probability(
        a in proptest::collection::vec(unit_rational(), 3..6),
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a.clone()).unwrap();
        let mut rotated = a;
        rotated.rotate_left(1);
        let algo_rot = SingleThresholdAlgorithm::new(rotated).unwrap();
        prop_assert_eq!(
            winning_probability_threshold(&algo, &cap).unwrap(),
            winning_probability_threshold(&algo_rot, &cap).unwrap()
        );
    }

    #[test]
    fn complementing_thresholds_preserves_probability(
        a in proptest::collection::vec(unit_rational(), 2..5),
        cap in capacity(),
    ) {
        // Swapping the roles of the two bins: a_i -> 1 - a_i changes
        // which bin collects small inputs, but the bins are
        // interchangeable... only when the decision regions mirror.
        // For the oblivious family this is exact: α -> 1 - α.
        let algo = ObliviousAlgorithm::new(a.clone()).unwrap();
        let flipped = ObliviousAlgorithm::new(
            a.iter().map(|x| Rational::one() - x).collect()
        ).unwrap();
        prop_assert_eq!(
            winning_probability_oblivious(&algo, &cap).unwrap(),
            winning_probability_oblivious(&flipped, &cap).unwrap()
        );
    }

    // The two instantiations of the generic core agree everywhere:
    // for random systems of up to 8 players and random capacities,
    // the exact-rational and f64 pipelines compute the same winning
    // probability within the workspace float tolerance. This single
    // property subsumes the per-module exact-vs-numeric spot checks.
    #[test]
    fn f64_paths_track_exact_everywhere(
        a in proptest::collection::vec(unit_rational(), 2..9),
        cap in capacity(),
    ) {
        let eps = contracts::tolerances::PROB_EPS;
        let af: Vec<f64> = a.iter().map(Rational::to_f64).collect();
        let algo_t = SingleThresholdAlgorithm::new(a.clone()).unwrap();
        let exact_t = winning_probability_threshold(&algo_t, &cap).unwrap().to_f64();
        let fast_t = winning_probability_threshold_f64(&af, cap.to_f64()).unwrap();
        prop_assert!((exact_t - fast_t).abs() < eps);

        let algo_o = ObliviousAlgorithm::new(a).unwrap();
        let exact_o = winning_probability_oblivious(&algo_o, &cap).unwrap().to_f64();
        let fast_o = winning_probability_oblivious_f64(&af, cap.to_f64()).unwrap();
        prop_assert!((exact_o - fast_o).abs() < eps);
    }

    // Memoization is invisible: evaluating through one shared
    // EvalContext (tables warm after the first call) gives
    // bit-for-bit the same value as the fresh-context wrappers.
    #[test]
    fn shared_context_is_transparent(
        systems in proptest::collection::vec(
            proptest::collection::vec(unit_rational(), 2..8),
            2..5,
        ),
        cap in capacity(),
    ) {
        let delta = cap.to_f64();
        let mut ctx = EvalContext::new();
        for a in systems {
            let af: Vec<f64> = a.iter().map(Rational::to_f64).collect();
            prop_assert_eq!(
                winning_probability_threshold_in(&mut ctx, &af, &delta).unwrap(),
                winning_probability_threshold_f64(&af, delta).unwrap()
            );
            prop_assert_eq!(
                winning_probability_oblivious_in(&mut ctx, &af, &delta).unwrap(),
                winning_probability_oblivious_f64(&af, delta).unwrap()
            );
        }
    }

    // Beyond the reach of exact cross-checking the ball instantiation
    // takes over as referee: for symmetric systems of up to 32
    // players, both fast paths land inside the certified enclosure
    // computed by the *same* generic core instantiated at `Ball` —
    // containment is an arithmetic theorem (round-to-nearest is
    // monotone, so every f64 intermediate stays inside its outward-
    // rounded ball), and the enclosure itself must stay tight enough
    // to be a meaningful certificate. (Feasible at 32 only because
    // the symmetric path groups the inclusion–exclusion subsets by
    // size into scaled Irwin–Hall CDFs; the reflected, compensated
    // Irwin–Hall sum is also what keeps the widths below PROB_EPS —
    // the raw alternating sum's cancellation would blow past it by
    // n = 24.)
    #[test]
    fn f64_paths_lie_in_ball_enclosures_up_to_32_players(
        beta in unit_rational(),
        n in 2usize..=32,
        cap in capacity(),
    ) {
        let bf = beta.to_f64();
        let delta = cap.to_f64();
        let af = vec![bf; n];
        let balls = vec![Ball::point(bf); n];
        let mut ctx: EvalContext<Ball> = EvalContext::new();
        let delta_ball = Ball::point(delta);

        let fast_t = winning_probability_threshold_f64(&af, delta).unwrap();
        let enc_t = winning_probability_threshold_in(&mut ctx, &balls, &delta_ball).unwrap();
        prop_assert!(enc_t.lo() <= fast_t && fast_t <= enc_t.hi(),
            "threshold f64 {fast_t} escapes [{}, {}]", enc_t.lo(), enc_t.hi());
        prop_assert!(enc_t.width() < contracts::tolerances::PROB_EPS);

        let fast_o = winning_probability_oblivious_f64(&af, delta).unwrap();
        let enc_o = winning_probability_oblivious_in(&mut ctx, &balls, &delta_ball).unwrap();
        prop_assert!(enc_o.lo() <= fast_o && fast_o <= enc_o.hi(),
            "oblivious f64 {fast_o} escapes [{}, {}]", enc_o.lo(), enc_o.hi());
        prop_assert!(enc_o.width() < contracts::tolerances::PROB_EPS);
    }

    #[test]
    fn symbolic_piecewise_equals_direct_threshold(
        n in 2usize..6,
        beta in unit_rational(),
        cap in capacity(),
    ) {
        let pw = symmetric::analyze(n, &cap).unwrap();
        let algo = SingleThresholdAlgorithm::symmetric(n, beta.clone()).unwrap();
        let direct = winning_probability_threshold(&algo, &cap).unwrap();
        prop_assert_eq!(pw.eval(&beta).unwrap(), direct);
    }

    #[test]
    fn symbolic_polynomial_equals_direct_oblivious(
        n in 2usize..6,
        alpha in unit_rational(),
        cap in capacity(),
    ) {
        let poly = oblivious::polynomial_in_alpha(n, &cap).unwrap();
        let algo = ObliviousAlgorithm::symmetric(n, alpha.clone()).unwrap();
        let direct = winning_probability_oblivious(&algo, &cap).unwrap();
        prop_assert_eq!(poly.eval(&alpha), direct);
    }

    #[test]
    fn uniform_half_gradient_vanishes(n in 2usize..7, cap in capacity()) {
        let grad = oblivious::optimality_gradient(
            &ObliviousAlgorithm::fair(n),
            &cap,
        ).unwrap();
        prop_assert!(grad.iter().all(Rational::is_zero));
    }

    #[test]
    fn symmetric_piecewise_is_continuous(n in 2usize..7, cap in capacity()) {
        prop_assert!(symmetric::analyze(n, &cap).unwrap().is_continuous());
    }

    #[test]
    fn partial_piecewise_is_exact_section(
        a in proptest::collection::vec(unit_rational(), 3..5),
        k_seed in 0usize..8,
        x in unit_rational(),
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a.clone()).unwrap();
        let k = k_seed % a.len();
        let curve = decision::conditions::partial_piecewise(&algo, k, &cap).unwrap();
        prop_assert!(curve.is_continuous());
        let mut moved = a;
        moved[k] = x.clone();
        let direct = winning_probability_threshold(
            &SingleThresholdAlgorithm::new(moved).unwrap(),
            &cap,
        ).unwrap();
        prop_assert_eq!(curve.eval(&x).unwrap(), direct);
    }

    #[test]
    fn general_prefix_rules_equal_thresholds(
        a in proptest::collection::vec(unit_rational(), 2..5),
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a).unwrap();
        let rule = decision::rules::GeneralRule::from(&algo);
        prop_assert_eq!(
            rule.winning_probability(&cap).unwrap(),
            winning_probability_threshold(&algo, &cap).unwrap()
        );
    }

    #[test]
    fn interval_rule_bin_swap_invariance(
        cuts in proptest::collection::btree_set(1i64..12, 2..5),
        cap in capacity(),
    ) {
        // Build an alternating rule from sorted cuts in (0,1).
        let cuts: Vec<Rational> = cuts.into_iter().map(|c| Rational::ratio(c, 12)).collect();
        let mut intervals = Vec::new();
        let mut endpoints = vec![Rational::zero()];
        endpoints.extend(cuts);
        endpoints.push(Rational::one());
        for (i, w) in endpoints.windows(2).enumerate() {
            if i % 2 == 0 {
                intervals.push((w[0].clone(), w[1].clone()));
            }
        }
        let set = decision::rules::BinZeroSet::new(intervals).unwrap();
        let rule = decision::rules::GeneralRule::new(vec![set.clone(), set]).unwrap();
        prop_assert_eq!(
            rule.winning_probability(&cap).unwrap(),
            rule.swapped().winning_probability(&cap).unwrap()
        );
    }

    #[test]
    fn crash_mixture_is_monotone_and_bounded(
        a in proptest::collection::vec(unit_rational(), 2..5),
        p1 in 0i64..=10,
        cap in capacity(),
    ) {
        let algo = SingleThresholdAlgorithm::new(a).unwrap();
        let p_lo = Rational::ratio(p1, 10);
        let p_hi = Rational::ratio((p1 + 2).min(10), 10);
        let v_lo = decision::faults::threshold_with_crashes(&algo, &cap, &p_lo).unwrap();
        let v_hi = decision::faults::threshold_with_crashes(&algo, &cap, &p_hi).unwrap();
        prop_assert!(v_hi >= v_lo);
        prop_assert!(v_lo <= Rational::one() && !v_lo.is_negative());
    }

    #[test]
    fn hetero_reduces_to_homogeneous(
        a in proptest::collection::vec(unit_rational(), 2..5),
        cap in capacity(),
    ) {
        let hetero = decision::hetero::HeterogeneousThresholds::homogeneous(a.clone()).unwrap();
        let standard = SingleThresholdAlgorithm::new(a).unwrap();
        prop_assert_eq!(
            hetero.winning_probability(&cap).unwrap(),
            winning_probability_threshold(&standard, &cap).unwrap()
        );
    }

    #[test]
    fn hetero_scale_covariance(
        a in proptest::collection::vec(unit_rational(), 2..4),
        lam_num in 1i64..5,
        cap in capacity(),
    ) {
        let lambda = Rational::ratio(lam_num, 2);
        let base = decision::hetero::HeterogeneousThresholds::homogeneous(a).unwrap();
        let scaled = base.scaled(&lambda);
        let scaled_cap = Capacity::new(cap.value() * &lambda).unwrap();
        prop_assert_eq!(
            scaled.winning_probability(&scaled_cap).unwrap(),
            base.winning_probability(&cap).unwrap()
        );
    }
}
