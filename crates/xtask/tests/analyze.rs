//! Integration tests for `cargo xtask analyze`: each scope-aware
//! analysis fires on its fixture's bad sites and stays silent on the
//! good ones, the stream-fingerprint gate catches a mutated kernel,
//! stale waivers are detected and prunable, and the real workspace is
//! clean under all thirteen checks.

use std::path::Path;
use xtask::analyses::check_file;
use xtask::fingerprint::{self, Fingerprint};
use xtask::lints::Violation;
use xtask::source::{FileKind, SourceFile};

/// Parses a fixture under the given virtual repo path.
fn fixture(name: &str, virtual_path: &str, kind: FileKind) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    SourceFile::parse(virtual_path, kind, &text)
}

fn lines(violations: &[Violation], check: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.lint == check)
        .map(|v| v.line)
        .collect()
}

#[test]
fn determinism_flow_fires_on_laundering_only() {
    let f = fixture(
        "determinism_flow.rs",
        "crates/demo/src/determinism_flow.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    // The three laundering sites (tail call, let-chain, let-bound
    // call); every seed-named, literal, const, field, waived, and
    // test-module site stays silent.
    assert_eq!(lines(&v, "determinism-flow"), vec![6, 12, 47], "{v:?}");
}

#[test]
fn lock_discipline_fires_on_held_guards_only() {
    let f = fixture(
        "lock_discipline.rs",
        "crates/demo/src/lock_discipline.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    // recv under lock, join under helper guard, send under read guard;
    // scoped/dropped/extracted/io-read/waived sites stay silent.
    assert_eq!(lines(&v, "lock-discipline"), vec![7, 14, 21], "{v:?}");
}

#[test]
fn lock_discipline_covers_socket_calls() {
    let f = fixture(
        "service_io.rs",
        "crates/demo/src/service_io.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    // write_all under the registry lock, accept under the list lock,
    // read_line under a read guard; the extracted, scoped, dropped,
    // and waived sites stay silent.
    assert_eq!(lines(&v, "lock-discipline"), vec![30, 36, 44], "{v:?}");
}

#[test]
fn lock_discipline_covers_child_process_calls() {
    let f = fixture(
        "process_io.rs",
        "crates/demo/src/process_io.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    // kill under the roster lock, try_wait under the ledger guard,
    // wait_with_output under the log lock; the dropped, extracted,
    // and waived sites stay silent.
    assert_eq!(lines(&v, "lock-discipline"), vec![42, 48, 56], "{v:?}");
}

#[test]
fn hot_path_alloc_fires_inside_hot_fns_only() {
    let f = fixture(
        "hot_path_alloc.rs",
        "crates/demo/src/hot_path_alloc.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    // collect in run_batch; clone + vec! in refill; Vec::new in
    // decide. Cold construction, cold helpers, the clean next_unit,
    // and the waived probe stay silent.
    assert_eq!(lines(&v, "hot-path-alloc"), vec![6, 12, 13, 28], "{v:?}");
}

#[test]
fn analyses_do_not_fire_on_test_files() {
    for name in [
        "determinism_flow.rs",
        "lock_discipline.rs",
        "hot_path_alloc.rs",
        "service_io.rs",
        "process_io.rs",
    ] {
        let f = fixture(name, "crates/demo/tests/t.rs", FileKind::TestLike);
        assert!(check_file(&f).is_empty(), "{name} fired in a test file");
    }
}

/// The fixture gate's critical set: the two `BufferedUniforms`
/// methods of the miniature kernel.
const CRITICAL: &[(&str, &str)] = &[
    ("crates/demo/src/kernel.rs", "BufferedUniforms::refill"),
    ("crates/demo/src/kernel.rs", "BufferedUniforms::next_unit"),
];

fn engine_stub(version: u64) -> SourceFile {
    SourceFile::parse(
        "crates/simulator/src/engine.rs",
        FileKind::Lib,
        &format!("pub(crate) const RNG_STREAM_VERSION: u32 = {version};\n"),
    )
}

fn kernel_files(name: &str, version: u64) -> Vec<SourceFile> {
    vec![
        fixture(name, "crates/demo/src/kernel.rs", FileKind::Lib),
        engine_stub(version),
    ]
}

#[test]
fn fingerprint_gate_fires_on_a_mutated_kernel_without_a_version_bump() {
    let original = kernel_files("stream_kernel.rs", 2);
    let (fp, errors) = fingerprint::compute(CRITICAL, &original);
    assert!(errors.is_empty(), "{errors:?}");
    let committed = fp.render();
    // The attested sources pass their own gate.
    assert!(fingerprint::check(CRITICAL, &original, Some(&committed)).is_empty());
    // The mutated twin changes one token of next_unit's CHUNK
    // neighborhood (a real stream change) but not the version: the
    // gate must fail, naming the changed fn.
    let mutated = kernel_files("stream_kernel_mutated.rs", 2);
    let violations = fingerprint::check(CRITICAL, &mutated, Some(&committed));
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0]
        .message
        .contains("without an RNG_STREAM_VERSION bump"));
    assert!(violations[0].message.contains("next_unit"));
    // refill's tokens are identical, so only next_unit is reported:
    // comment and whitespace churn in the mutated fixture is invisible.
}

#[test]
fn fingerprint_gate_requires_reattestation_after_a_bump_then_passes() {
    let original = kernel_files("stream_kernel.rs", 2);
    let (fp, _) = fingerprint::compute(CRITICAL, &original);
    let committed = fp.render();
    // Bumping the version flips the failure mode to "re-attest".
    let bumped = kernel_files("stream_kernel_mutated.rs", 3);
    let violations = fingerprint::check(CRITICAL, &bumped, Some(&committed));
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].message.contains("--update-fingerprint"));
    // Re-attesting under the new version settles the gate.
    let (fp2, errors) = fingerprint::compute(CRITICAL, &bumped);
    assert!(errors.is_empty());
    let recommitted = fp2.render();
    assert!(fingerprint::check(CRITICAL, &bumped, Some(&recommitted)).is_empty());
    // And the round trip through the JSON text is lossless.
    let parsed = Fingerprint::parse(&recommitted).unwrap();
    assert_eq!(parsed.version, 3);
    assert_eq!(parsed.entries.len(), 2);
}

#[test]
fn committed_workspace_fingerprint_is_reproducible() {
    // The committed artifact must be exactly what --update-fingerprint
    // would write from the current sources.
    let root = xtask::repo_root();
    let files = xtask::parse_workspace(root).expect("parse workspace");
    let (fp, errors) = fingerprint::compute(fingerprint::CRITICAL_FNS, &files);
    assert!(errors.is_empty(), "{errors:?}");
    let committed = std::fs::read_to_string(root.join(fingerprint::FINGERPRINT_FILE))
        .expect("committed fingerprint");
    assert_eq!(
        fp.render(),
        committed,
        "results/stream_fingerprint.json is out of date: run `cargo xtask analyze --update-fingerprint`"
    );
}

#[test]
fn stale_waivers_are_pruned_in_place() {
    // prune_allowlist only touches the allow file, so it can run
    // against a scratch directory.
    let dir = std::env::temp_dir().join(format!("xtask-prune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let allow = dir.join(xtask::ALLOWLIST_FILE);
    std::fs::write(
        &allow,
        "# waivers\nno-panic crates/bench/src/ fixture reason\nlock-discipline crates/gone/ obsolete reason\n",
    )
    .expect("write allowlist");
    let stale = vec![xtask::allow::AllowEntry {
        lint: "lock-discipline".to_owned(),
        path_fragment: "crates/gone/".to_owned(),
        reason: "obsolete reason".to_owned(),
    }];
    let dropped = xtask::prune_allowlist(&dir, &stale).expect("prune");
    assert_eq!(dropped, 1);
    let kept = std::fs::read_to_string(&allow).expect("read back");
    assert!(kept.contains("# waivers"), "comments survive pruning");
    assert!(kept.contains("no-panic crates/bench/src/"));
    assert!(!kept.contains("crates/gone/"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn real_workspace_is_clean_under_all_13_checks() {
    let report = xtask::analyze_workspace(xtask::repo_root()).expect("analyze run");
    assert!(
        report.violations.is_empty() && report.stale.is_empty(),
        "workspace has analyzer findings:\n{}{}",
        xtask::render(&report.violations),
        xtask::render_stale(&report.stale)
    );
}
