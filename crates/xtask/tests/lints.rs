//! Integration tests: each lint fires on its fixture, waived paths
//! stay silent, and the real workspace is clean.

use std::path::Path;
use xtask::allow::Allowlist;
use xtask::lints::{check_file, Violation, LINTS};
use xtask::source::{FileKind, SourceFile};

/// Parses a fixture under the given virtual repo path.
fn fixture(name: &str, virtual_path: &str, kind: FileKind) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    SourceFile::parse(virtual_path, kind, &text)
}

fn by_lint<'a>(violations: &'a [Violation], lint: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.lint == lint).collect()
}

#[test]
fn no_panic_fires_on_fixture_and_respects_waivers() {
    let f = fixture("panics.rs", "crates/demo/src/panics.rs", FileKind::Lib);
    let v = check_file(&f);
    let hits = by_lint(&v, "no-panic");
    // unwrap, expect, panic!, unreachable! — the waived unwrap and the
    // test-module unwrap stay silent.
    assert_eq!(hits.len(), 4, "{v:?}");
}

#[test]
fn no_panic_ignores_test_files_entirely() {
    let f = fixture(
        "panics.rs",
        "crates/demo/tests/panics.rs",
        FileKind::TestLike,
    );
    assert!(by_lint(&check_file(&f), "no-panic").is_empty());
}

#[test]
fn unseeded_rng_fires_everywhere_including_tests() {
    let f = fixture("rng.rs", "crates/demo/src/rng.rs", FileKind::Lib);
    assert_eq!(by_lint(&check_file(&f), "no-unseeded-rng").len(), 3);
    let t = fixture("rng.rs", "crates/demo/tests/rng.rs", FileKind::TestLike);
    assert_eq!(by_lint(&check_file(&t), "no-unseeded-rng").len(), 3);
}

#[test]
fn no_print_fires_in_lib_but_not_in_bin() {
    let f = fixture("prints.rs", "crates/demo/src/prints.rs", FileKind::Lib);
    assert_eq!(by_lint(&check_file(&f), "no-print").len(), 2);
    let b = fixture("prints.rs", "crates/demo/src/bin/prints.rs", FileKind::Bin);
    assert!(by_lint(&check_file(&b), "no-print").is_empty());
}

#[test]
fn panics_doc_fires_only_on_the_undocumented_fn() {
    let f = fixture(
        "panics_doc.rs",
        "crates/demo/src/panics_doc.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "panics-doc");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("# Panics"));
}

#[test]
fn float_tolerance_fires_once_on_the_bare_literal() {
    let f = fixture(
        "tolerance.rs",
        "crates/demo/src/tolerance.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "float-tolerance");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("1e-9"));
}

#[test]
fn unsafe_header_fires_only_when_parsed_as_crate_root() {
    let f = fixture("no_header.rs", "crates/demo/src/lib.rs", FileKind::Lib);
    assert_eq!(by_lint(&check_file(&f), "unsafe-header").len(), 1);
    let g = fixture("no_header.rs", "crates/demo/src/other.rs", FileKind::Lib);
    assert!(by_lint(&check_file(&g), "unsafe-header").is_empty());
}

#[test]
fn no_twin_f64_fires_once_and_respects_waivers() {
    let f = fixture("twin_f64.rs", "crates/demo/src/twin_f64.rs", FileKind::Lib);
    let v = check_file(&f);
    let hits = by_lint(&v, "no-twin-f64");
    // Only the unwaived free function fires; the waived wrapper, the
    // method, and the test helper stay silent.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("volume_f64"));
}

#[test]
fn no_dyn_hot_loop_fires_once_and_respects_waivers() {
    let f = fixture(
        "dyn_hot_loop.rs",
        "crates/demo/src/dyn_hot_loop.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "no-dyn-hot-loop");
    // The unwaived `run_batch` (signature dyn) and `kernel_dispatch`
    // (boxed dyn in the body) fire; the waived baseline, the
    // non-hot-path fns, the monomorphized generic, and the
    // test-module helper stay silent.
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits[0].message.contains("run_batch"));
    assert!(hits[1].message.contains("kernel_dispatch"));
}

#[test]
fn no_silent_send_fires_once_and_respects_waivers() {
    let f = fixture(
        "silent_send.rs",
        "crates/demo/src/silent_send.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "no-silent-send");
    // Only the discarded `send` fires; the handled send, `try_send`,
    // the waived site, and the test-module helper stay silent.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 7);
}

#[test]
fn no_silent_send_covers_socket_deliveries() {
    let f = fixture(
        "service_io.rs",
        "crates/demo/src/service_io.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "no-silent-send");
    // The discarded `write_all` and `flush` fire; the handled write,
    // the waived shutdown, and the test-module helper stay silent.
    assert_eq!(hits.len(), 2, "{v:?}");
    assert_eq!(hits[0].line, 8);
    assert!(hits[0].message.contains("write_all"));
    assert_eq!(hits[1].line, 13);
    assert!(hits[1].message.contains("flush"));
}

#[test]
fn no_silent_send_covers_child_process_calls() {
    let f = fixture(
        "process_io.rs",
        "crates/demo/src/process_io.rs",
        FileKind::Lib,
    );
    let v = check_file(&f);
    let hits = by_lint(&v, "no-silent-send");
    // The discarded `spawn`, `kill`, and `wait` fire; the branched
    // kill, the named best-effort reap, the waived poll, and the
    // test-module helper stay silent.
    assert_eq!(hits.len(), 3, "{v:?}");
    assert_eq!(hits[0].line, 10);
    assert!(hits[0].message.contains("spawn"));
    assert_eq!(hits[1].line, 15);
    assert!(hits[1].message.contains("kill"));
    assert_eq!(hits[2].line, 20);
    assert!(hits[2].message.contains("wait"));
}

#[test]
fn allowlist_entries_silence_matching_paths_only() {
    let f = fixture("prints.rs", "crates/demo/src/prints.rs", FileKind::Lib);
    let v = check_file(&f);
    let list =
        Allowlist::parse("no-print crates/demo/ reporter writes to the terminal by design\n")
            .expect("valid allowlist");
    assert!(by_lint(&list.filter(v.clone()), "no-print").is_empty());
    let other = Allowlist::parse("no-print crates/elsewhere/ different crate\n").expect("valid");
    assert_eq!(by_lint(&other.filter(v), "no-print").len(), 2);
}

#[test]
fn every_lint_has_a_firing_fixture() {
    // Guards the lint table against silently unexercised rules.
    let fixtures = [
        ("panics.rs", "crates/demo/src/panics.rs"),
        ("rng.rs", "crates/demo/src/rng.rs"),
        ("prints.rs", "crates/demo/src/prints.rs"),
        ("panics_doc.rs", "crates/demo/src/panics_doc.rs"),
        ("tolerance.rs", "crates/demo/src/tolerance.rs"),
        ("no_header.rs", "crates/demo/src/lib.rs"),
        ("twin_f64.rs", "crates/demo/src/twin_f64.rs"),
        ("dyn_hot_loop.rs", "crates/demo/src/dyn_hot_loop.rs"),
        ("silent_send.rs", "crates/demo/src/silent_send.rs"),
    ];
    let mut all = Vec::new();
    for (name, vpath) in fixtures {
        all.extend(check_file(&fixture(name, vpath, FileKind::Lib)));
    }
    for lint in LINTS {
        assert!(
            all.iter().any(|v| v.lint == lint.id),
            "lint `{}` never fired on any fixture",
            lint.id
        );
    }
}

#[test]
fn real_workspace_is_clean() {
    let report = xtask::lint_workspace(xtask::repo_root()).expect("lint run");
    assert!(
        report.violations.is_empty() && report.stale.is_empty(),
        "workspace has lint violations:\n{}{}",
        xtask::render(&report.violations),
        xtask::render_stale(&report.stale)
    );
}
