//! Fixture for the `no-dyn-hot-loop` lint: one hot-path fn with
//! dynamic dispatch (fires), one waived baseline, and one fn whose
//! name marks it as outside the hot path.

/// A batch runner taking a trait object: fires.
fn run_batch(rule: &dyn LocalRule, count: u64) -> u64 {
    let mut wins = 0;
    for _ in 0..count {
        wins += u64::from(rule.decide());
    }
    wins
}

/// A deliberate dispatch baseline for benchmarks: waived.
fn kernel_baseline(
    rule: &dyn LocalRule, // xtask:allow(no-dyn-hot-loop): deliberate dispatch baseline for the bench
    count: u64,
) -> u64 {
    run_batch(rule, count)
}

/// Setup code outside any batch/kernel fn: exempt by name.
fn configure(rule: Box<dyn LocalRule>) -> Box<dyn LocalRule> {
    rule
}

/// A boxed trait object smuggled into a kernel fn *body* (not the
/// signature): fires.
fn kernel_dispatch(count: u64) -> u64 {
    let rule: Box<dyn LocalRule> = configure(make());
    let mut wins = 0;
    for _ in 0..count {
        wins += u64::from(rule.decide());
    }
    wins
}

/// The monomorphized shape the lint pushes toward: silent.
fn run_batch_mono<R: LocalRule>(rule: &R, count: u64) -> u64 {
    let mut wins = 0;
    for _ in 0..count {
        wins += u64::from(rule.decide());
    }
    wins
}

fn make() -> Box<dyn LocalRule> {
    unimplemented!()
}

trait LocalRule {
    fn decide(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code may exercise hot-path names with dyn freely: silent.
    fn check_batch(rule: &dyn LocalRule) -> u64 {
        run_batch(rule, 10)
    }
}
