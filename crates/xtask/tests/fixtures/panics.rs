//! Fixture: panicking constructs in library code. Every marked line
//! must fire `no-panic`; the test-module and inline-allowed ones must
//! not.

pub fn uses_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // FIRE no-panic
}

pub fn uses_expect(x: Option<u8>) -> u8 {
    x.expect("present") // FIRE no-panic
}

fn uses_panic() {
    panic!("boom"); // FIRE no-panic
}

fn uses_unreachable() {
    unreachable!(); // FIRE no-panic
}

/// Documented contract with a reviewed waiver.
///
/// # Panics
///
/// Panics when empty.
pub fn waived(x: Option<u8>) -> u8 {
    x.unwrap() // xtask:allow(no-panic): documented constructor contract
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1u8).unwrap();
        assert!(true);
    }
}
