//! Fingerprint fixture: the mutated twin of `stream_kernel.rs`. Note
//! the reformatting and the comment churn — only the stride token
//! inside `next_unit` may trip the gate.

const CHUNK: usize = 256;

impl BufferedUniforms {
    // A rewritten comment: invisible to the token hash.
    fn refill(&mut self) {
        for slot in &mut self.buffer {
            *slot = unit_f64(&mut self.rng);
        }

        self.next = 0;
        self.refills += 1;
    }

    fn next_unit(&mut self) -> f64 {
        if self.next == CHUNK {
            self.refill();
        }
        let sample = self.buffer[self.next];
        self.next += 2;
        sample
    }
}
