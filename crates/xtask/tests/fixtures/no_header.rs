//! Fixture: a crate root with no `#![forbid(unsafe_code)]` header;
//! fires `unsafe-header` when parsed as a `src/lib.rs`.

pub fn fine() {}
