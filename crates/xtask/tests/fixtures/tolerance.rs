//! Fixture: bare float tolerances.

mod tolerances {
    /// Named, reviewed tolerance: must NOT fire.
    pub const PROB_EPS: f64 = 1e-9;
}

const LOCAL_EPS: f64 = 1e-12; // const definition: must NOT fire

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 // FIRE float-tolerance
}

fn also_close(a: f64, b: f64) -> bool {
    (a - b).abs() < tolerances::PROB_EPS + LOCAL_EPS // named: must NOT fire
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_bare_tolerances() {
        assert!((0.1f64 + 0.2 - 0.3).abs() < 1e-12);
    }
}
