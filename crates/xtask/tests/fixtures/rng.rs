//! Fixture: ambient-entropy RNG constructors; all must fire
//! `no-unseeded-rng`, even inside the test module.

fn entropy_a() {
    let _r = rand::thread_rng(); // FIRE no-unseeded-rng
}

fn entropy_b() {
    let _r = StdRng::from_entropy(); // FIRE no-unseeded-rng
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_not_exempt() {
        let _x: u64 = rand::random(); // FIRE no-unseeded-rng
    }
}
