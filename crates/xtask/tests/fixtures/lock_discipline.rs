//! Fixture for the lock-discipline analysis: guards across blocking
//! calls.

/// BAD: recv while holding the queue lock.
fn recv_under_lock(queue: &Mutex<Receiver<u64>>) -> Option<u64> {
    let guard = queue.lock().unwrap();
    guard.recv().ok()
}

/// BAD: join while a helper-acquired guard is live.
fn join_under_helper(pool: &Pool) {
    let sup = pool.lock_supervisor();
    for handle in sup.handles.iter() {
        let _ = handle.join();
    }
}

/// BAD: a let-else bound read guard across a send.
fn send_under_read(state: &RwLock<u8>, tx: &Sender<u8>) {
    let Ok(snapshot) = state.read() else { return };
    let _r = tx.send(*snapshot);
}

/// GOOD: the guard's block ends before the blocking call.
fn scoped(queue: &Mutex<Receiver<u64>>, done: &Receiver<()>) {
    let pending = {
        let guard = queue.lock().unwrap();
        guard.try_recv().ok()
    };
    let _ = done.recv();
    let _ = pending;
}

/// GOOD: explicit drop releases the guard first.
fn dropped(m: &Mutex<u8>, handle: JoinHandle<()>) {
    let guard = m.lock().unwrap();
    drop(guard);
    let _r = handle.join();
}

/// GOOD: extracting owned data in one statement binds no guard.
fn extracted(pool: &Pool) {
    let handles: Vec<JoinHandle<()>> = pool.lock_supervisor().handles.drain(..).collect();
    for handle in handles {
        let _r = handle.join();
    }
}

/// GOOD: an io read with a buffer argument is not a lock.
fn io_read(src: &mut File, rx: &Receiver<u8>, buf: &mut [u8]) {
    let _n = src.read(buf).unwrap();
    let _m = rx.recv();
}

/// Waived: the deliberate handoff pattern, with its justification.
fn handoff(queue: &Mutex<Receiver<u64>>) -> Option<u64> {
    let guard = queue.lock().unwrap();
    // xtask:allow(lock-discipline): handoff fixture — exactly one consumer may block in recv
    guard.recv().ok()
}
