//! Fixture for the hot-path-alloc analysis: allocation in the
//! monomorphized kernel/refill path.

/// BAD: collect inside the batch runner.
fn run_batch<K: Kernel>(kernel: &K, count: u64) -> Vec<u64> {
    (0..count).map(|i| kernel.score(i)).collect()
}

impl BufferedUniforms {
    /// BAD: clone and a vec! literal in the refill path.
    fn refill(&mut self) {
        let staged = self.buffer.clone();
        let scratch = vec![0.0f64; 4];
        let _ = (staged, scratch);
    }

    /// GOOD: the straight buffer walk allocates nothing.
    fn next_unit(&mut self) -> f64 {
        let sample = self.buffer[self.next];
        self.next += 1;
        sample
    }
}

impl ThresholdKernel {
    /// BAD: Vec::new inside a decision method.
    fn decide(&self, player: usize, input: f64) -> Bin {
        let mut trace: Vec<f64> = Vec::new();
        trace.push(input);
        Bin::Zero
    }

    /// GOOD: construction happens once per run, off the hot path.
    fn build(thresholds: &[Rational]) -> ThresholdKernel {
        let converted: Vec<f64> = thresholds.iter().map(Rational::to_f64).collect();
        ThresholdKernel { thresholds: converted }
    }
}

/// GOOD: cold helpers may allocate freely.
fn summarize(totals: &[u64]) -> Vec<u64> {
    totals.to_vec()
}

impl ScalarUniforms {
    /// Waived: a justified exception inside the hot path stays silent.
    fn next_unit(&mut self) -> f64 {
        // xtask:allow(hot-path-alloc): fixture waiver — audit probe clones a 2-element array
        let probe = self.audit.clone();
        let _ = probe;
        self.rng.gen_range(0.0..1.0)
    }
}
