//! Fixture for the `no-twin-f64` lint: one unwaived twin free
//! function (fires), one waived wrapper, one method, one test helper.

/// A hand-maintained float twin of an exact implementation: fires.
pub fn volume_f64(t: f64) -> f64 {
    t * t
}

/// A thin instantiation wrapper over the generic core: waived.
pub fn cdf_f64(t: f64) -> f64 { // xtask:allow(no-twin-f64): instantiation wrapper over the generic core
    cdf_in(&t)
}

fn cdf_in(t: &f64) -> f64 {
    *t
}

struct Value(f64);

impl Value {
    /// A conversion method, indented inside the impl: exempt.
    pub fn to_f64(&self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    fn probe_f64() -> f64 {
        0.5
    }

    #[test]
    fn t() {
        assert!(probe_f64() > 0.0);
    }
}
