//! Fixture for the service-io widening of two rules: discarded
//! socket deliveries (`no-silent-send` over `write_all`/`flush`/
//! `shutdown`) and lock guards held across socket calls
//! (`lock-discipline` over `accept`/`read_line`/`write_all`/`flush`).

/// BAD: a discarded `write_all` silently loses the payload.
fn drops_write(stream: &mut TcpStream, payload: &[u8]) {
    let _ = stream.write_all(payload);
}

/// BAD: a discarded `flush` can leave the peer with a torn frame.
fn drops_flush(stream: &mut TcpStream) {
    let _ = stream.flush();
}

/// GOOD: branching on the delivery result.
fn handles_write(stream: &mut TcpStream, payload: &[u8]) -> bool {
    stream.write_all(payload).is_ok()
}

/// Waived: half-closing a connection that already failed.
fn waived_shutdown(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Both); // xtask:allow(no-silent-send): connection is already dead; the close is best-effort
}

/// BAD: writing to a client while holding the registry lock — one
/// slow peer stalls every thread that needs the registry.
fn write_under_lock(registry: &Mutex<Registry>, stream: &mut TcpStream) {
    let guard = registry.lock().unwrap();
    let _ok = stream.write_all(&guard.greeting).is_ok();
}

/// BAD: accepting while holding the connection-list lock.
fn accept_under_lock(listener: &TcpListener, connections: &Mutex<Vec<TcpStream>>) {
    let mut list = connections.lock().unwrap();
    if let Ok((stream, _addr)) = listener.accept() {
        list.push(stream);
    }
}

/// BAD: a `read_line` poll while a state read guard is live.
fn read_under_guard(state: &RwLock<u8>, reader: &mut BufReader<TcpStream>, line: &mut String) {
    let Ok(snapshot) = state.read() else { return };
    let _n = reader.read_line(line);
    let _s = *snapshot;
}

/// GOOD: extracting owned data in one statement binds no guard.
fn extracted(registry: &Mutex<Registry>, stream: &mut TcpStream) -> bool {
    let greeting: Vec<u8> = registry.lock().unwrap().greeting.clone();
    stream.write_all(&greeting).is_ok() && stream.flush().is_ok()
}

/// GOOD: the guard's block ends before the socket call.
fn scoped(registry: &Mutex<Registry>, stream: &mut TcpStream) -> bool {
    let greeting = {
        let guard = registry.lock().unwrap();
        guard.greeting.clone()
    };
    stream.write_all(&greeting).is_ok()
}

/// GOOD: explicit drop releases the guard before the accept poll.
fn dropped(listener: &TcpListener, connections: &Mutex<Vec<TcpStream>>) {
    let guard = connections.lock().unwrap();
    let backlog = guard.len();
    drop(guard);
    if backlog < 64 {
        let _conn = listener.accept();
    }
}

/// Waived: the single-writer handoff — flushing under the writer
/// lock is the lock's whole purpose.
fn handoff(writer: &Mutex<TcpStream>) -> bool {
    let mut guard = writer.lock().unwrap();
    // xtask:allow(lock-discipline): service_io fixture — single-writer socket; the lock serializes exactly this flush
    guard.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_helper(stream: &mut TcpStream) {
        let _ = stream.flush();
    }
}
