//! Fixture for the determinism-flow analysis: seed provenance.

/// BAD: launders an arbitrary value into a generator — the caller
/// could pass wall-clock time and nothing would notice.
fn launder(x: u64) -> StdRng {
    StdRng::seed_from_u64(x)
}

/// BAD: the binding chain never touches anything seed-flavored.
fn chained(x: u64) -> StdRng {
    let mixed = x ^ 0xabcd;
    StdRng::seed_from_u64(mixed)
}

/// GOOD: the parameter name carries the provenance.
fn from_seed_param(seed: u64, batch: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(seed ^ batch.wrapping_mul(0x9e37)))
}

/// GOOD: a let-bound local inherits provenance from its initializer.
fn via_local(seed: u64) -> StdRng {
    let derived = splitmix(seed);
    StdRng::seed_from_u64(derived)
}

/// GOOD: fixed literals and named constants are deterministic origins.
const SALT: u64 = 17;
fn fixed() -> (StdRng, StdRng) {
    (StdRng::seed_from_u64(42), StdRng::seed_from_u64(SALT))
}

/// GOOD: a struct field named seed is a trusted origin.
impl Runner {
    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Waived: an explicitly justified exception stays silent.
fn waived(x: u64) -> StdRng {
    // xtask:allow(determinism-flow): x is a replay cursor, provenance documented at the call sites
    StdRng::seed_from_u64(x)
}

/// BAD: let-binding the generator does not hide the call site.
fn bound(x: u64) -> StdRng {
    let rng = StdRng::seed_from_u64(x);
    rng
}

#[cfg(test)]
mod tests {
    /// Test code may seed from whatever it likes.
    fn probe(x: u64) -> StdRng {
        StdRng::seed_from_u64(x)
    }
}
