//! Fingerprint fixture: a miniature stream-critical kernel. The
//! mutated twin (`stream_kernel_mutated.rs`) differs by exactly one
//! token — the chunk constant — which is a real stream change.

const CHUNK: usize = 256;

impl BufferedUniforms {
    fn refill(&mut self) {
        for slot in &mut self.buffer {
            *slot = unit_f64(&mut self.rng);
        }
        self.next = 0;
        self.refills += 1;
    }

    fn next_unit(&mut self) -> f64 {
        if self.next == CHUNK {
            self.refill();
        }
        let sample = self.buffer[self.next];
        self.next += 1;
        sample
    }
}
