//! Fixture for `no-silent-send`: one discarded delivery fires; the
//! handled, waived, try_send, and test-module sites stay silent.

use std::sync::mpsc::{Sender, SyncSender};

fn drops_failure(tx: &Sender<u8>) {
    let _ = tx.send(1);
}

fn handles_failure(tx: &Sender<u8>) {
    if tx.send(2).is_err() {
        return;
    }
}

fn nonblocking_is_different(tx: &SyncSender<u8>) {
    let _ = tx.try_send(3);
}

fn waived(tx: &Sender<u8>) {
    let _ = tx.send(4); // xtask:allow(no-silent-send): receiver outlives this call by construction
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_helper(tx: &Sender<u8>) {
        let _ = tx.send(5);
    }
}
