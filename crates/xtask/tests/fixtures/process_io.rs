//! Fixture for the process-supervision widening of two rules:
//! discarded child-process results (`no-silent-send` over
//! `spawn`/`kill`/`wait`/`try_wait`) and lock guards held across
//! supervision calls (`lock-discipline` over `kill`/`try_wait`/
//! `wait`/`wait_with_output`).

/// BAD: a discarded `spawn` leaks an unsupervised child on success
/// and hides the spawn failure otherwise.
fn drops_spawn(cmd: &mut Command) {
    let _ = cmd.spawn();
}

/// BAD: a discarded `kill` leaves the worker's fate unknown.
fn drops_kill(child: &mut Child) {
    let _ = child.kill();
}

/// BAD: a discarded `wait` throws away the exit status.
fn drops_wait(child: &mut Child) {
    let _ = child.wait();
}

/// GOOD: branching on the supervision result.
fn handles_kill(child: &mut Child) -> bool {
    child.kill().is_ok()
}

/// GOOD: a named placeholder documents a deliberate best-effort reap.
fn best_effort_reap(child: &mut Child) {
    let _reaped = child.wait();
}

/// Waived: a pure poll whose outcome the deadline path re-checks.
fn waived_poll(child: &mut Child) {
    let _ = child.try_wait(); // xtask:allow(no-silent-send): poll only; the deadline pass re-checks this child
}

/// BAD: killing a worker while the roster lock is held — a wedged
/// worker stalls every thread that needs the roster.
fn kill_under_lock(roster: &Mutex<Vec<Child>>, index: usize) {
    let mut guard = roster.lock().unwrap();
    let _stopped = guard[index].kill().is_ok();
}

/// BAD: polling a child while the ledger guard is live.
fn poll_under_lock(ledger: &Mutex<Ledger>, child: &mut Child) {
    let mut stats = ledger.lock().unwrap();
    if let Ok(Some(status)) = child.try_wait() {
        stats.exits += u64::from(status.success());
    }
}

/// BAD: draining a child's full output while holding the log lock.
fn drain_under_lock(log: &Mutex<String>, child: Child) {
    let guard = log.lock().unwrap();
    if let Ok(out) = child.wait_with_output() {
        let _len = guard.len() + out.stdout.len();
    }
}

/// GOOD: explicit drop releases the guard before the blocking wait.
fn dropped(ledger: &Mutex<Ledger>, child: &mut Child) {
    let guard = ledger.lock().unwrap();
    let budget = guard.budget;
    drop(guard);
    if budget > 0 {
        let _status = child.wait();
    }
}

/// GOOD: extracting owned data in one statement binds no guard.
fn extracted(roster: &Mutex<Vec<Child>>) -> usize {
    let fleet: usize = roster.lock().unwrap().len();
    fleet
}

/// Waived: the slot lock exists to serialize exactly this poll.
fn slot_poll(slot: &Mutex<Child>) -> bool {
    let mut guard = slot.lock().unwrap();
    // xtask:allow(lock-discipline): process_io fixture — the slot lock serializes this single poll by design
    guard.try_wait().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_helper(child: &mut Child) {
        let _ = child.kill();
    }
}
