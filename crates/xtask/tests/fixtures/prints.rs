//! Fixture: terminal output in library code; the live lines fire
//! `no-print`, the string literal and test module do not.

fn chatty() {
    println!("progress: {}", 1); // FIRE no-print
    eprintln!("warning"); // FIRE no-print
}

fn about_printing() -> &'static str {
    "call println!(..) to print" // string content: must NOT fire
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
