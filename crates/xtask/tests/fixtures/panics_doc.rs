//! Fixture: `# Panics` documentation contract.

/// Undocumented panic: must fire `panics-doc` at the signature.
/// (`assert!` alone does not fire `no-panic` — preconditions are
/// fine, undocumented ones are not.)
pub fn undocumented(x: u8) -> u8 {
    assert!(x > 0, "positive");
    x
}

/// Documented panic: must not fire.
///
/// # Panics
///
/// Panics if `x` is zero.
pub fn documented(x: u8) -> u8 {
    assert!(x > 0, "positive");
    x
}

/// Cannot panic: must not fire.
pub fn total(x: u8) -> u8 {
    x.saturating_add(1)
}
