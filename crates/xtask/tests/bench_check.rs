//! Integration tests for `cargo xtask bench-check` on committed
//! fixture documents: the synthetic regression fixture must fail the
//! gate (this is the scenario CI's bench-check step exists to catch),
//! and the reference must pass against itself.

use xtask::bench_check::{check_bench_documents, floor_for, parse_bench_document};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn reference_fixture_passes_against_itself() {
    let reference = fixture("bench_reference.json");
    let summary = check_bench_documents(&reference, &reference).expect("self-comparison passes");
    assert_eq!(summary.rows, 4);
}

#[test]
fn synthetic_regression_fixture_fails_the_gate() {
    let reference = fixture("bench_reference.json");
    let regressed = fixture("bench_regressed.json");
    let message = check_bench_documents(&regressed, &reference)
        .expect_err("the regressed fixture must fail the gate");
    // The lane row regressed from 4.380x to 2.900x — below the
    // 4.380 − 1.095 = 3.285x floor.
    assert!(message.contains("threshold n = 8 · lane"));
    assert!(message.contains("2.900x"));
    // The regressed fixture also silently dropped the `buffered` row;
    // a vanished benchmark is a failure in its own right.
    assert!(message.contains("threshold n = 8 · buffered"));
    assert!(message.contains("missing from the fresh measurement"));
    // The rows inside the band stay quiet: kernel+buffered moved
    // 2.592 → 2.500 (floor 1.944) and kernel+metrics is unchanged.
    assert!(!message.contains("kernel+buffered"));
    assert!(!message.contains("kernel+metrics"));
}

#[test]
fn fixture_floors_match_the_documented_band() {
    let reference = fixture("bench_reference.json");
    let rows = parse_bench_document(&reference).expect("reference parses");
    let lane = rows
        .iter()
        .find(|r| r.label == "threshold n = 8 · lane")
        .expect("lane row present");
    assert!((floor_for(lane.speedup) - 3.285).abs() < 1e-9);
}
