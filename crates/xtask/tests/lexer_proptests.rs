//! Property tests for the analyzer's lexer: on arbitrary generated
//! source — well-formed fragment soup and outright garbage alike —
//! the token stream must tile the input exactly, with byte offsets
//! and line numbers that round-trip to the original text. Every
//! downstream pass reports locations straight out of these tokens, so
//! offset drift here would misplace violations everywhere.

use proptest::collection;
use proptest::prelude::*;
use proptest::TestCaseError;
use xtask::lexer::{lex, Token};

/// Renders one generated fragment: `selector` picks the lexical
/// shape, `payload` varies its content deterministically.
fn fragment(selector: u32, payload: u64) -> String {
    let p = payload as usize;
    match selector {
        0 => format!("ident{p}"),
        1 => format!("{payload}"),
        2 => format!("{payload}.5e-{}", p % 9),
        3 => format!("\"s{}\\\"q\\\\{}\"", p % 7, p % 3),
        4 => {
            let hashes = "#".repeat(p % 3);
            format!("r{hashes}\"raw {} \" inner\"{hashes}", p % 5)
        }
        5 => ["'x'", "'\\n'", "'\\u{1F600}'", "'😀'", "b'q'"][p % 5].to_owned(),
        6 => format!("'life{p}"),
        7 => format!("// line note {p}\n"),
        8 => format!("/* block /* nested {p} */ note */"),
        9 => [
            "+", "-", "::", "->", "=>", ";", ",", ".", "(", ")", "{", "}", "<", ">", "#", "!",
        ][p % 16]
            .to_owned(),
        10 => [" ", "\n", "\t", "\n\n", "  "][p % 5].to_owned(),
        11 => format!("b\"bytes{}\"", p % 4),
        _ => format!("br\"rb{}\"", p % 4),
    }
}

/// Asserts the round-trip invariants of a lexed `source`.
fn assert_round_trip(source: &str) -> Result<(), TestCaseError> {
    let tokens: Vec<Token> = lex(source);
    let mut cursor = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        prop_assert!(
            t.start >= cursor,
            "token {idx} starts at {} before cursor {cursor} in {source:?}",
            t.start
        );
        prop_assert!(
            t.end > t.start && t.end <= source.len(),
            "token {idx} has bad extent {}..{} in {source:?}",
            t.start,
            t.end
        );
        // Gaps between tokens hold only whitespace: every non-space
        // byte of the input is inside exactly one token.
        let gap = &source[cursor..t.start];
        prop_assert!(
            gap.chars().all(char::is_whitespace),
            "non-whitespace gap {gap:?} before token {idx} in {source:?}"
        );
        // The recorded line is derivable from the offset alone.
        let expect_line = 1 + source[..t.start].bytes().filter(|&b| b == b'\n').count();
        prop_assert_eq!(
            t.line,
            expect_line,
            "token {} line {} != {} in {:?}",
            idx,
            t.line,
            expect_line,
            source
        );
        // Offsets slice on char boundaries (text() must not panic).
        let _ = t.text(source);
        cursor = t.end;
    }
    let tail = &source[cursor..];
    prop_assert!(
        tail.chars().all(char::is_whitespace),
        "non-whitespace tail {tail:?} in {source:?}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fragment_soup_round_trips(
        frags in collection::vec((0u32..13, 0u64..10_000), 0..40),
    ) {
        let mut source = String::new();
        for (selector, payload) in frags {
            source.push_str(&fragment(selector, payload));
            source.push(' ');
        }
        assert_round_trip(&source)?;
    }

    #[test]
    fn ascii_garbage_round_trips(
        bytes in collection::vec(0x20u32..0x7f, 0..60),
        newlines in collection::vec(0usize..60, 0..6),
    ) {
        let mut bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        for (offset, position) in newlines.into_iter().enumerate() {
            let at = (position + offset).min(bytes.len());
            bytes.insert(at, b'\n');
        }
        let source = String::from_utf8_lossy(&bytes).into_owned();
        assert_round_trip(&source)?;
    }

    #[test]
    fn multibyte_text_round_trips(
        words in collection::vec(0usize..6, 0..20),
    ) {
        let mut source = String::new();
        for w in words {
            source.push_str(["α", "βeta", "'😀'", "\"π≈3\"", "// δoc\n", "日本"][w]);
            source.push(' ');
        }
        assert_round_trip(&source)?;
    }
}
