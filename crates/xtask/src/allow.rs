//! The allowlist file: checked-in, reviewed waivers.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! <lint-id> <path-substring> <reason...>
//! ```
//!
//! An entry silences `<lint-id>` in every file whose repo-relative
//! path contains `<path-substring>`. The reason is mandatory; entries
//! without one are rejected at parse time so waivers cannot rot
//! silently.

use crate::analyses::ANALYSES;
use crate::fingerprint;
use crate::lints::{Violation, LINTS};

/// Every check id an allowlist entry may waive: the nine lints, the
/// three per-file analyses, and the stream-fingerprint gate.
#[must_use]
pub fn known_ids() -> Vec<&'static str> {
    LINTS
        .iter()
        .chain(ANALYSES.iter())
        .map(|l| l.id)
        .chain(std::iter::once(fingerprint::CHECK_ID))
        .collect()
}

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The lint being waived.
    pub lint: String,
    /// Substring of the repo-relative path the waiver applies to.
    pub path_fragment: String,
    /// Why the waiver exists.
    pub reason: String,
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line: missing
    /// fields, a missing reason, or an unknown lint id.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let lint = parts.next().unwrap_or_default().to_owned();
            let path_fragment = parts.next().unwrap_or_default().to_owned();
            let reason = parts.next().unwrap_or_default().trim().to_owned();
            if path_fragment.is_empty() || reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: expected `<lint-id> <path> <reason>`, got `{line}`",
                    idx + 1
                ));
            }
            if !known_ids().contains(&lint.as_str()) {
                return Err(format!("allowlist line {}: unknown lint `{lint}`", idx + 1));
            }
            entries.push(AllowEntry {
                lint,
                path_fragment,
                reason,
            });
        }
        Ok(Allowlist { entries })
    }

    /// `true` when `violation` is covered by an entry.
    #[must_use]
    pub fn covers(&self, violation: &Violation) -> bool {
        self.entries
            .iter()
            .any(|e| e.lint == violation.lint && violation.path.contains(&e.path_fragment))
    }

    /// Filters a violation set down to the uncovered ones.
    #[must_use]
    pub fn filter(&self, violations: Vec<Violation>) -> Vec<Violation> {
        violations.into_iter().filter(|v| !self.covers(v)).collect()
    }

    /// Entries that waive nothing: their check id is in `scope` (the
    /// set of checks that actually ran) but they cover none of the
    /// pre-filter violations `raw`. Stale waivers are an error — the
    /// allowlist may only shrink — so the driver reports these and
    /// `--prune` removes them.
    #[must_use]
    pub fn stale_entries(&self, raw: &[Violation], scope: &[&str]) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .filter(|e| {
                scope.contains(&e.lint.as_str())
                    && !raw
                        .iter()
                        .any(|v| e.lint == v.lint && v.path.contains(&e.path_fragment))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(lint: &'static str, path: &str) -> Violation {
        Violation {
            lint,
            path: path.to_owned(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let list = Allowlist::parse(
            "# comment\nno-print crates/criterion/ benchmark reporter writes to stdout\n",
        )
        .unwrap();
        assert_eq!(list.entries.len(), 1);
        assert!(list.covers(&violation("no-print", "crates/criterion/src/lib.rs")));
        assert!(!list.covers(&violation("no-panic", "crates/criterion/src/lib.rs")));
        assert!(!list.covers(&violation("no-print", "crates/decision/src/lib.rs")));
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(Allowlist::parse("no-print crates/criterion/\n").is_err());
    }

    #[test]
    fn unknown_lint_is_rejected() {
        assert!(Allowlist::parse("no-such-lint crates/x/ some reason\n").is_err());
    }

    #[test]
    fn analysis_ids_are_valid_entries() {
        let list = Allowlist::parse(
            "lock-discipline crates/simulator/src/pool.rs queue handoff design\nstream-fingerprint results/ attested\n",
        )
        .unwrap();
        assert_eq!(list.entries.len(), 2);
    }

    #[test]
    fn stale_entries_respect_the_check_scope() {
        let list = Allowlist::parse(
            "no-panic crates/bench/ fixture\nlock-discipline crates/simulator/ handoff\n",
        )
        .unwrap();
        let raw = vec![violation("no-panic", "crates/bench/src/lib.rs")];
        // Under lint scope the lock-discipline entry is out of scope,
        // so only a genuinely uncovered lint entry would be stale.
        assert!(list.stale_entries(&raw, &["no-panic"]).is_empty());
        // Under the full scope the unmatched analysis entry is stale.
        let stale = list.stale_entries(&raw, &["no-panic", "lock-discipline"]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].lint, "lock-discipline");
    }
}
