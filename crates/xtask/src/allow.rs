//! The allowlist file: checked-in, reviewed waivers.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! <lint-id> <path-substring> <reason...>
//! ```
//!
//! An entry silences `<lint-id>` in every file whose repo-relative
//! path contains `<path-substring>`. The reason is mandatory; entries
//! without one are rejected at parse time so waivers cannot rot
//! silently.

use crate::lints::{Violation, LINTS};

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The lint being waived.
    pub lint: String,
    /// Substring of the repo-relative path the waiver applies to.
    pub path_fragment: String,
    /// Why the waiver exists.
    pub reason: String,
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line: missing
    /// fields, a missing reason, or an unknown lint id.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let lint = parts.next().unwrap_or_default().to_owned();
            let path_fragment = parts.next().unwrap_or_default().to_owned();
            let reason = parts.next().unwrap_or_default().trim().to_owned();
            if path_fragment.is_empty() || reason.is_empty() {
                return Err(format!(
                    "allowlist line {}: expected `<lint-id> <path> <reason>`, got `{line}`",
                    idx + 1
                ));
            }
            if !LINTS.iter().any(|l| l.id == lint) {
                return Err(format!("allowlist line {}: unknown lint `{lint}`", idx + 1));
            }
            entries.push(AllowEntry {
                lint,
                path_fragment,
                reason,
            });
        }
        Ok(Allowlist { entries })
    }

    /// `true` when `violation` is covered by an entry.
    #[must_use]
    pub fn covers(&self, violation: &Violation) -> bool {
        self.entries
            .iter()
            .any(|e| e.lint == violation.lint && violation.path.contains(&e.path_fragment))
    }

    /// Filters a violation set down to the uncovered ones.
    #[must_use]
    pub fn filter(&self, violations: Vec<Violation>) -> Vec<Violation> {
        violations.into_iter().filter(|v| !self.covers(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(lint: &'static str, path: &str) -> Violation {
        Violation {
            lint,
            path: path.to_owned(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let list = Allowlist::parse(
            "# comment\nno-print crates/criterion/ benchmark reporter writes to stdout\n",
        )
        .unwrap();
        assert_eq!(list.entries.len(), 1);
        assert!(list.covers(&violation("no-print", "crates/criterion/src/lib.rs")));
        assert!(!list.covers(&violation("no-panic", "crates/criterion/src/lib.rs")));
        assert!(!list.covers(&violation("no-print", "crates/decision/src/lib.rs")));
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(Allowlist::parse("no-print crates/criterion/\n").is_err());
    }

    #[test]
    fn unknown_lint_is_rejected() {
        assert!(Allowlist::parse("no-such-lint crates/x/ some reason\n").is_err());
    }
}
