//! CLI entry point: `cargo xtask <command>`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::{Command, ExitCode};
use xtask::{
    analyses::ANALYSES, analyze_workspace, fingerprint, lint_workspace, lints::LINTS,
    prune_allowlist, render, render_stale, repo_root, update_fingerprint, CheckReport,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    match args.first().map(String::as_str) {
        Some("lint") if flag("--list") => {
            print_checks(false);
            ExitCode::SUCCESS
        }
        Some("lint") => run_lints(flag("--prune")),
        Some("analyze") if flag("--list") => {
            print_checks(true);
            ExitCode::SUCCESS
        }
        Some("analyze") if flag("--update-fingerprint") => match update_fingerprint(repo_root()) {
            Ok(path) => {
                eprintln!("xtask analyze: wrote {path}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("xtask analyze: {message}");
                ExitCode::FAILURE
            }
        },
        Some("analyze") => run_analyze(flag("--json")),
        Some("ci") => run_ci(),
        Some("metrics-check") => {
            if let Some(path) = args.get(1) {
                run_metrics_check(path)
            } else {
                eprintln!("usage: cargo xtask metrics-check <path/to/metrics.json>");
                ExitCode::FAILURE
            }
        }
        Some("chaos-check") => {
            if let Some(path) = args.get(1) {
                run_chaos_check(path)
            } else {
                eprintln!("usage: cargo xtask chaos-check <path/to/chaos_smoke.json>");
                ExitCode::FAILURE
            }
        }
        Some("shard-check") => {
            if let Some(path) = args.get(1) {
                run_shard_check(path)
            } else {
                eprintln!("usage: cargo xtask shard-check <path/to/shard_smoke.json>");
                ExitCode::FAILURE
            }
        }
        Some("table") => run_table(&args),
        Some("table-check") => run_table_check(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .unwrap_or_else(default_table_path),
        ),
        Some("bench-check") => {
            if let (Some(fresh), Some(committed)) = (args.get(1), args.get(2)) {
                run_bench_check(fresh, committed)
            } else {
                eprintln!(
                    "usage: cargo xtask bench-check <path/to/fresh.json> <path/to/committed.json>"
                );
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--list|--prune] | analyze [--list|--json|--update-fingerprint] | ci | metrics-check <path> | chaos-check <path> | shard-check <path> | bench-check <fresh> <committed> | table [--max-n N] [--out path] | table-check [path]>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Every check as `(id, summary)` rows: the nine lints and, when
/// `full`, the three analyses plus the fingerprint gate.
fn check_rows(full: bool) -> Vec<(&'static str, &'static str)> {
    let mut rows: Vec<(&'static str, &'static str)> =
        LINTS.iter().map(|l| (l.id, l.summary)).collect();
    if full {
        rows.extend(ANALYSES.iter().map(|a| (a.id, a.summary)));
        rows.push((fingerprint::CHECK_ID, fingerprint::SUMMARY));
    }
    rows
}

/// Prints the check table for `--list`.
fn print_checks(full: bool) {
    for (id, summary) in check_rows(full) {
        println!("{id:<18} {summary}");
    }
}

/// Validates a `chaos-smoke/v1` fault-recovery artifact; nonzero exit
/// on a read failure, a structural problem, a chaotic report that is
/// not bit-equal to the fault-free one, or recovery counters showing
/// the plan never engaged.
fn run_chaos_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask chaos-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::chaos::validate_chaos_document(&text) {
        Ok(summary) => {
            eprintln!("xtask chaos-check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask chaos-check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `shard-smoke/v1` orchestration artifact; nonzero exit
/// on a read failure, a structural problem, a merge that is not
/// byte-identical to the single-process baseline, or a supervision
/// ledger showing the chaos plan never engaged.
fn run_shard_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask shard-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::shard::validate_shard_document(&text) {
        Ok(summary) => {
            eprintln!("xtask shard-check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask shard-check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Compares a fresh benchmark JSON against the committed reference;
/// nonzero exit on a read failure, a malformed document, a committed
/// row missing from the fresh measurement, or any fresh speedup below
/// its tolerance floor.
fn run_bench_check(fresh_path: &str, committed_path: &str) -> ExitCode {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("xtask bench-check: read {path}: {e}"))
    };
    let (fresh, committed) = match (read(fresh_path), read(committed_path)) {
        (Ok(f), Ok(c)) => (f, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::bench_check::check_bench_documents(&fresh, &committed) {
        Ok(summary) => {
            eprintln!("xtask bench-check: {fresh_path} vs {committed_path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask bench-check: {fresh_path} vs {committed_path}:\n{message}");
            ExitCode::FAILURE
        }
    }
}

/// Default location of the committed certified threshold table.
fn default_table_path() -> String {
    repo_root()
        .join("results")
        .join("threshold_table.json")
        .display()
        .to_string()
}

/// Certifies the optimal-threshold table (`n = 2..=max_n` under
/// `δ = n/3`) and writes `threshold-table/v1` JSON atomically
/// (temp-file + rename, so readers never observe a torn table).
fn run_table(args: &[String]) -> ExitCode {
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let Ok(max_n) = opt("--max-n").map_or(Ok(128u32), |raw| raw.parse()) else {
        eprintln!("xtask table: --max-n expects an integer");
        return ExitCode::FAILURE;
    };
    let out = opt("--out").cloned().unwrap_or_else(default_table_path);
    let started = std::time::Instant::now();
    let table = match decision::certified::build_table(max_n) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("xtask table: certification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = table.to_json();
    let out_path = std::path::Path::new(&out);
    let tmp = out_path.with_extension("json.tmp");
    let write = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, out_path));
    if let Err(e) = write {
        eprintln!("xtask table: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask table: wrote {out}: {} certified rows (n = 2..={max_n}) in {:.1?}",
        table.rows().len(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}

/// Validates the committed threshold table: structural checks over
/// the `threshold-table/v1` document, then semantic spot
/// re-certification (derivative sign tests at the enclosure
/// endpoints) of a handful of rows spread across the table.
fn run_table_check(path: String) -> ExitCode {
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask table-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = match xtask::table::validate_table_document(&text) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("xtask table-check: {path}: {message}");
            return ExitCode::FAILURE;
        }
    };
    let picks = xtask::table::spot_indices(rows.len(), 5);
    for &idx in &picks {
        let row = &rows[idx];
        let n = row.n as u32;
        if !decision::certified::spot_check(n, row.beta_lo, row.beta_hi) {
            eprintln!(
                "xtask table-check: {path}: row n={n} failed spot re-certification \
                 ([{}, {}] does not bracket the optimum)",
                row.beta_lo, row.beta_hi
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "xtask table-check: {path}: {} rows ok (n = 2..={}), {} spot re-certified",
        rows.len(),
        rows.last().map_or(0, |r| r.n),
        picks.len()
    );
    ExitCode::SUCCESS
}

/// Validates an `engine-metrics/v1` JSON export; nonzero exit on a
/// read failure or any structural problem.
fn run_metrics_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask metrics-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::metrics::validate_metrics_document(&text) {
        Ok(summary) => {
            eprintln!("xtask metrics-check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask metrics-check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Reports one check run: violations, then stale waivers (pruning
/// them first if asked). Returns the exit code.
fn report(label: &str, report: &CheckReport, total_checks: usize, prune: bool) -> ExitCode {
    let mut failed = false;
    if !report.violations.is_empty() {
        print!("{}", render(&report.violations));
        failed = true;
    }
    if !report.stale.is_empty() {
        if prune {
            match prune_allowlist(repo_root(), &report.stale) {
                Ok(dropped) => eprintln!("xtask {label}: pruned {dropped} stale waiver(s)"),
                Err(message) => {
                    eprintln!("xtask {label}: {message}");
                    failed = true;
                }
            }
        } else {
            print!("{}", render_stale(&report.stale));
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "xtask {label}: {} violation(s), {} stale waiver(s)",
            report.violations.len(),
            report.stale.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("xtask {label}: clean ({total_checks} checks)");
        ExitCode::SUCCESS
    }
}

/// Runs the nine lints; nonzero exit on any violation or stale waiver.
fn run_lints(prune: bool) -> ExitCode {
    match lint_workspace(repo_root()) {
        Ok(outcome) => report("lint", &outcome, LINTS.len(), prune),
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the full analyzer (lints + analyses + fingerprint gate).
fn run_analyze(json: bool) -> ExitCode {
    match analyze_workspace(repo_root()) {
        Ok(outcome) if json => {
            print!("{}", render_json(&outcome));
            if outcome.violations.is_empty() && outcome.stale.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(outcome) => report("analyze", &outcome, check_rows(true).len(), false),
        Err(message) => {
            eprintln!("xtask analyze: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Renders an `analyze/v1` JSON document for editor/tooling
/// integration: the check table plus every violation and stale
/// waiver.
fn render_json(outcome: &CheckReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"analyze/v1\",\n  \"checks\": [\n");
    let rows = check_rows(true);
    for (idx, (id, summary)) in rows.iter().enumerate() {
        let comma = if idx + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{id}\", \"summary\": \"{}\"}}{comma}",
            json_escape(summary)
        );
    }
    out.push_str("  ],\n  \"violations\": [\n");
    for (idx, v) in outcome.violations.iter().enumerate() {
        let comma = if idx + 1 == outcome.violations.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"check\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
            v.lint,
            json_escape(&v.path),
            v.line,
            json_escape(&v.message)
        );
    }
    out.push_str("  ],\n  \"stale_waivers\": [\n");
    for (idx, e) in outcome.stale.iter().enumerate() {
        let comma = if idx + 1 == outcome.stale.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"check\": \"{}\", \"path\": \"{}\"}}{comma}",
            e.lint,
            json_escape(&e.path_fragment)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping for the fields we emit.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The local CI pipeline: fmt-check, the full analyzer, then the
/// tier-1 tests.
fn run_ci() -> ExitCode {
    let steps: &[(&str, &[&str])] = &[
        ("cargo fmt --check", &["fmt", "--check"]),
        ("cargo test -q", &["test", "-q"]),
        ("cargo test -q --workspace", &["test", "-q", "--workspace"]),
    ];
    let (fmt, tests) = steps.split_first().expect("steps are nonempty"); // xtask:allow(no-panic): static slice above
    if !run_cargo(fmt.0, fmt.1) {
        return ExitCode::FAILURE;
    }
    if run_analyze(false) == ExitCode::FAILURE {
        return ExitCode::FAILURE;
    }
    for (label, argv) in tests {
        if !run_cargo(label, argv) {
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

/// Runs one `cargo` step from the repo root, echoing its label.
fn run_cargo(label: &str, argv: &[&str]) -> bool {
    eprintln!("xtask ci: {label}");
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(argv)
        .current_dir(repo_root())
        .status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask ci: `{label}` failed with {s}");
            false
        }
        Err(e) => {
            eprintln!("xtask ci: could not spawn `{label}`: {e}");
            false
        }
    }
}
