//! CLI entry point: `cargo xtask <command>`.

#![forbid(unsafe_code)]

use std::process::{Command, ExitCode};
use xtask::{lint_workspace, lints::LINTS, render, repo_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.iter().any(|a| a == "--list") => {
            for lint in LINTS {
                println!("{:<16} {}", lint.id, lint.summary);
            }
            ExitCode::SUCCESS
        }
        Some("lint") => run_lints(),
        Some("ci") => run_ci(),
        Some("metrics-check") => {
            if let Some(path) = args.get(1) {
                run_metrics_check(path)
            } else {
                eprintln!("usage: cargo xtask metrics-check <path/to/metrics.json>");
                ExitCode::FAILURE
            }
        }
        Some("chaos-check") => {
            if let Some(path) = args.get(1) {
                run_chaos_check(path)
            } else {
                eprintln!("usage: cargo xtask chaos-check <path/to/chaos_smoke.json>");
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--list] | ci | metrics-check <path> | chaos-check <path>>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Validates a `chaos-smoke/v1` fault-recovery artifact; nonzero exit
/// on a read failure, a structural problem, a chaotic report that is
/// not bit-equal to the fault-free one, or recovery counters showing
/// the plan never engaged.
fn run_chaos_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask chaos-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::chaos::validate_chaos_document(&text) {
        Ok(summary) => {
            eprintln!("xtask chaos-check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask chaos-check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Validates an `engine-metrics/v1` JSON export; nonzero exit on a
/// read failure or any structural problem.
fn run_metrics_check(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask metrics-check: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match xtask::metrics::validate_metrics_document(&text) {
        Ok(summary) => {
            eprintln!("xtask metrics-check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xtask metrics-check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the static analysis; nonzero exit on any violation.
fn run_lints() -> ExitCode {
    match lint_workspace(repo_root()) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: clean ({} rules)", LINTS.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            print!("{}", render(&violations));
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The local CI pipeline: fmt-check, lints, then the tier-1 tests.
fn run_ci() -> ExitCode {
    let steps: &[(&str, &[&str])] = &[
        ("cargo fmt --check", &["fmt", "--check"]),
        ("cargo test -q", &["test", "-q"]),
        ("cargo test -q --workspace", &["test", "-q", "--workspace"]),
    ];
    let (fmt, tests) = steps.split_first().expect("steps are nonempty"); // xtask:allow(no-panic): static slice above
    if !run_cargo(fmt.0, fmt.1) {
        return ExitCode::FAILURE;
    }
    if run_lints() == ExitCode::FAILURE {
        return ExitCode::FAILURE;
    }
    for (label, argv) in tests {
        if !run_cargo(label, argv) {
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

/// Runs one `cargo` step from the repo root, echoing its label.
fn run_cargo(label: &str, argv: &[&str]) -> bool {
    eprintln!("xtask ci: {label}");
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .args(argv)
        .current_dir(repo_root())
        .status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask ci: `{label}` failed with {s}");
            false
        }
        Err(e) => {
            eprintln!("xtask ci: could not spawn `{label}`: {e}");
            false
        }
    }
}
