//! The brace/item tree: scope structure recovered from the token
//! stream, giving every analysis pass per-function token ranges with
//! `cfg(test)` / `#[test]` / doc-attribute awareness.
//!
//! This is deliberately *not* a full parser. It recognizes item
//! boundaries (`fn`, `mod`, `impl`, `trait`, `struct`, …), attaches
//! attributes and doc comments, brace-matches bodies, and records
//! token-index ranges into the [`crate::lexer`] stream. Function
//! bodies stay flat token ranges — passes walk them with their own
//! small automata — but *containment* (which impl a method lives in,
//! whether an item is test-only, where a module ends) is resolved
//! here once, so no pass ever re-derives scope from indentation or
//! line regexes again.

use crate::lexer::{Doc, Token, TokenKind};

/// What kind of item a tree node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method.
    Fn,
    /// A `mod` with or without a body.
    Mod,
    /// An `impl` block (the name is the self-type's last path
    /// segment).
    Impl,
    /// A `trait` definition.
    Trait,
    /// Any other item (`struct`, `enum`, `const`, `use`, macro
    /// invocation, …), kept for extent tracking.
    Other,
}

/// One parsed parameter of a function item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Binding names in the pattern (`x`; both of `(a, b)`).
    pub names: Vec<String>,
    /// The declared type, as source text with single spaces between
    /// tokens (empty for `self` receivers).
    pub ty: String,
}

/// Function-specific signature details.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnSig {
    /// The parameters, in order (excluding `self` receivers).
    pub params: Vec<Param>,
    /// `true` when the function takes a `self` receiver (a method).
    pub has_self: bool,
    /// The declared return type, token texts joined with spaces
    /// (empty when omitted).
    pub ret: String,
}

/// One item node.
#[derive(Clone, Debug)]
pub struct Item {
    /// The item's kind.
    pub kind: ItemKind,
    /// The item's name (empty for unnamed items; the self type for
    /// impls).
    pub name: String,
    /// Raw text of each attached attribute (e.g. `#[cfg(test)]`).
    pub attrs: Vec<String>,
    /// Attached outer doc text, lines joined with `\n`.
    pub doc: String,
    /// `true` for `pub` / `pub(...)` items.
    pub vis_pub: bool,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Token-index extent of the whole item, attributes included
    /// (half-open).
    pub extent: (usize, usize),
    /// Token-index range of the body *inside* the braces (half-open);
    /// `None` for braceless items.
    pub body: Option<(usize, usize)>,
    /// Signature details, for `Fn` items.
    pub sig: FnSig,
    /// Child items (for `Mod` / `Impl` / `Trait` bodies).
    pub children: Vec<Item>,
    /// `true` when the item or an ancestor is `#[cfg(test)]` /
    /// `#[test]`-marked.
    pub test: bool,
}

/// A flattened view of one function with its containment context.
#[derive(Clone, Debug)]
pub struct FnView<'t> {
    /// The function item.
    pub item: &'t Item,
    /// `Container::name` when the fn lives in an impl/trait/mod with
    /// a name, else just `name`.
    pub qualified: String,
    /// `true` when the fn is a free function (not inside an impl or
    /// trait).
    pub is_free: bool,
}

/// The parsed item tree of one file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Parses the item structure of a lexed file.
    #[must_use]
    pub fn parse(tokens: &[Token], source: &str) -> ItemTree {
        let mut parser = Parser { tokens, source };
        ItemTree {
            items: parser.items(0, tokens.len(), false),
        }
    }

    /// Every function in the tree, depth first, with its container
    /// qualification.
    #[must_use]
    pub fn functions(&self) -> Vec<FnView<'_>> {
        let mut out = Vec::new();
        for item in &self.items {
            collect_fns(item, None, true, &mut out);
        }
        out
    }

    /// Per-line map (index `i` = 1-based line `i + 1`) of lines
    /// covered by test-only items.
    #[must_use]
    pub fn test_lines(&self, tokens: &[Token], line_count: usize) -> Vec<bool> {
        let mut map = vec![false; line_count];
        for item in &self.items {
            mark_test_lines(item, tokens, &mut map);
        }
        map
    }

    /// Per-line map of lines inside any `mod <name> { … }` body.
    #[must_use]
    pub fn mod_lines(&self, name: &str, tokens: &[Token], line_count: usize) -> Vec<bool> {
        let mut map = vec![false; line_count];
        for item in &self.items {
            if item.kind == ItemKind::Mod && item.name == name {
                mark_lines(item, tokens, &mut map);
            }
            for child in &item.children {
                if child.kind == ItemKind::Mod && child.name == name {
                    mark_lines(child, tokens, &mut map);
                }
            }
        }
        map
    }
}

fn collect_fns<'t>(item: &'t Item, container: Option<&str>, free: bool, out: &mut Vec<FnView<'t>>) {
    if item.kind == ItemKind::Fn {
        let qualified = match container {
            Some(c) if !c.is_empty() => format!("{c}::{}", item.name),
            _ => item.name.clone(),
        };
        out.push(FnView {
            item,
            qualified,
            is_free: free,
        });
    }
    let (child_container, child_free) = match item.kind {
        ItemKind::Impl | ItemKind::Trait => (Some(item.name.as_str()), false),
        ItemKind::Mod => (None, true),
        _ => (container, free),
    };
    for child in &item.children {
        collect_fns(child, child_container, child_free, out);
    }
}

fn mark_test_lines(item: &Item, tokens: &[Token], map: &mut Vec<bool>) {
    if item.test {
        mark_lines(item, tokens, map);
        return;
    }
    for child in &item.children {
        mark_test_lines(child, tokens, map);
    }
}

fn mark_lines(item: &Item, tokens: &[Token], map: &mut [bool]) {
    let (start, end) = item.extent;
    if start >= end || end > tokens.len() {
        return;
    }
    let first = tokens[start].line;
    let last = tokens[end - 1].line;
    for line in first..=last {
        if let Some(slot) = map.get_mut(line - 1) {
            *slot = true;
        }
    }
}

/// Item qualifiers that may precede the defining keyword.
const QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default", "auto"];

struct Parser<'a> {
    tokens: &'a [Token],
    source: &'a str,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.tokens[i].text(self.source)
    }

    /// Index of the next non-comment token at or after `i` within
    /// `end`.
    fn skip_comments(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.tokens[i].is_comment() {
            i += 1;
        }
        i
    }

    /// Parses the items in token range `[start, end)`.
    #[allow(clippy::too_many_lines)] // one block per item shape; the flow reads top to bottom
    fn items(&mut self, start: usize, end: usize, inherited_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let tok = &self.tokens[i];
            // Leading doc comments and attributes attach to the item.
            let item_start = i;
            let mut doc_lines: Vec<String> = Vec::new();
            let mut attrs: Vec<String> = Vec::new();
            loop {
                if i >= end {
                    break;
                }
                let t = &self.tokens[i];
                match t.kind {
                    TokenKind::LineComment(Doc::Outer) | TokenKind::BlockComment(Doc::Outer) => {
                        doc_lines.push(t.text(self.source).to_owned());
                        i += 1;
                    }
                    TokenKind::LineComment(_) | TokenKind::BlockComment(_) => {
                        i += 1;
                    }
                    TokenKind::Punct(b'#') => {
                        // `#[…]` outer attribute; `#![…]` inner ones
                        // are consumed but not attached.
                        let j = self.skip_comments(i + 1, end);
                        let (j, inner) = if j < end && self.tokens[j].is_punct(b'!') {
                            (self.skip_comments(j + 1, end), true)
                        } else {
                            (j, false)
                        };
                        if j < end && self.tokens[j].is_punct(b'[') {
                            let close = self.match_delim(j, end, b'[', b']');
                            let text = self.span_text(i, close + 1);
                            if !inner {
                                attrs.push(text);
                            }
                            i = close + 1;
                        } else {
                            i += 1;
                        }
                    }
                    _ => break,
                }
            }
            if i >= end {
                break;
            }
            let _ = tok;

            // Visibility and qualifiers.
            let mut vis_pub = false;
            let kw_probe = i;
            let mut k = i;
            while k < end {
                let t = &self.tokens[k];
                if t.kind == TokenKind::Ident && self.text(k) == "pub" {
                    vis_pub = true;
                    k = self.skip_comments(k + 1, end);
                    if k < end && self.tokens[k].is_punct(b'(') {
                        k = self.skip_comments(self.match_delim(k, end, b'(', b')') + 1, end);
                    }
                } else if t.kind == TokenKind::Ident
                    && QUALIFIERS.contains(&self.text(k))
                    && self.next_starts_item(k + 1, end)
                {
                    k = self.skip_comments(k + 1, end);
                    // `extern "C"` carries a literal.
                    if k < end && self.tokens[k].kind == TokenKind::Str {
                        k = self.skip_comments(k + 1, end);
                    }
                } else {
                    break;
                }
            }
            i = k;
            if i >= end {
                break;
            }

            let test = inherited_test || attrs.iter().any(|a| attr_is_test(a));
            let keyword = if self.tokens[i].kind == TokenKind::Ident {
                self.text(i).to_owned()
            } else {
                String::new()
            };
            let doc = doc_lines.join("\n");
            let item = match keyword.as_str() {
                "fn" => self.parse_fn(item_start, i, end, attrs, doc, vis_pub, test),
                "mod" => self.parse_block_item(
                    ItemKind::Mod,
                    item_start,
                    i,
                    end,
                    attrs,
                    doc,
                    vis_pub,
                    test,
                ),
                "trait" => self.parse_block_item(
                    ItemKind::Trait,
                    item_start,
                    i,
                    end,
                    attrs,
                    doc,
                    vis_pub,
                    test,
                ),
                "impl" => self.parse_block_item(
                    ItemKind::Impl,
                    item_start,
                    i,
                    end,
                    attrs,
                    doc,
                    vis_pub,
                    test,
                ),
                _ => self.parse_other(item_start, i, end, attrs, doc, vis_pub, test),
            };
            i = item.extent.1.max(kw_probe + 1);
            out.push(item);
        }
        out
    }

    /// `true` when, skipping comments, an item keyword follows — used
    /// to tell the qualifier `const` in `const fn` from a `const`
    /// item.
    fn next_starts_item(&self, i: usize, end: usize) -> bool {
        let j = self.skip_comments(i, end);
        j < end
            && self.tokens[j].kind == TokenKind::Ident
            && matches!(self.text(j), "fn" | "trait" | "impl" | "unsafe" | "extern")
    }

    /// Finds the matching closer for the opener at `open`; returns
    /// the closer's index (or `end - 1` when unbalanced).
    fn match_delim(&self, open: usize, end: usize, o: u8, c: u8) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Source-order token texts joined with single spaces.
    fn span_text(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for i in start..end.min(self.tokens.len()) {
            if self.tokens[i].is_comment() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(i));
        }
        out
    }

    #[allow(clippy::too_many_arguments)] // item-shape parser; the fields land in one struct
    fn parse_fn(
        &mut self,
        item_start: usize,
        kw: usize,
        end: usize,
        attrs: Vec<String>,
        doc: String,
        vis_pub: bool,
        test: bool,
    ) -> Item {
        let line = self.tokens[kw].line;
        let mut i = self.skip_comments(kw + 1, end);
        let name = if i < end && self.tokens[i].kind == TokenKind::Ident {
            let n = self.text(i).to_owned();
            i += 1;
            n
        } else {
            String::new()
        };
        // Generics: angle-matched, ignoring the `>` of `->`.
        i = self.skip_comments(i, end);
        if i < end && self.tokens[i].is_punct(b'<') {
            i = self.skip_angles(i, end);
        }
        // Parameters.
        i = self.skip_comments(i, end);
        let mut sig = FnSig::default();
        if i < end && self.tokens[i].is_punct(b'(') {
            let close = self.match_delim(i, end, b'(', b')');
            sig = self.parse_params(i + 1, close);
            i = close + 1;
        }
        // Return type: up to `{`, `;`, or `where`.
        i = self.skip_comments(i, end);
        let mut ret_tokens: Vec<usize> = Vec::new();
        if i + 1 < end && self.tokens[i].is_punct(b'-') && self.tokens[i + 1].is_punct(b'>') {
            i += 2;
            let mut angle = 0i64;
            let mut delim = 0i64; // `[`/`(` depth: `[u64; 4]` has a `;` that must not end the type
            while i < end {
                let t = &self.tokens[i];
                if t.is_comment() {
                    i += 1;
                    continue;
                }
                if angle == 0
                    && delim == 0
                    && (t.is_punct(b'{')
                        || t.is_punct(b';')
                        || (t.kind == TokenKind::Ident && self.text(i) == "where"))
                {
                    break;
                }
                if t.is_punct(b'<') {
                    angle += 1;
                } else if t.is_punct(b'>') && !self.tokens[i - 1].is_punct(b'-') {
                    angle -= 1;
                } else if t.is_punct(b'[') || t.is_punct(b'(') {
                    delim += 1;
                } else if t.is_punct(b']') || t.is_punct(b')') {
                    delim -= 1;
                }
                ret_tokens.push(i);
                i += 1;
            }
        }
        sig.ret = {
            let mut out = String::new();
            for &t in &ret_tokens {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(self.text(t));
            }
            out
        };
        // Where clause / body.
        while i < end && !self.tokens[i].is_punct(b'{') && !self.tokens[i].is_punct(b';') {
            i += 1;
        }
        let (body, extent_end) = if i < end && self.tokens[i].is_punct(b'{') {
            let close = self.match_delim(i, end, b'{', b'}');
            (Some((i + 1, close)), close + 1)
        } else {
            (None, (i + 1).min(end))
        };
        Item {
            kind: ItemKind::Fn,
            name,
            attrs,
            doc,
            vis_pub,
            line,
            extent: (item_start, extent_end),
            body,
            sig,
            children: Vec::new(),
            test,
        }
    }

    /// Skips a `<…>` group starting at `open`, tolerant of `->` and
    /// `=>` inside (their `>` is not a closer).
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct(b'<') {
                depth += 1;
            } else if t.is_punct(b'>')
                && !(i > 0
                    && (self.tokens[i - 1].is_punct(b'-') || self.tokens[i - 1].is_punct(b'=')))
            {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Parses a parameter list in `[start, end)` (inside the parens).
    fn parse_params(&self, start: usize, end: usize) -> FnSig {
        let mut sig = FnSig::default();
        let mut depth = 0i64;
        let mut piece_start = start;
        let mut pieces: Vec<(usize, usize)> = Vec::new();
        for i in start..end {
            let t = &self.tokens[i];
            if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'<') {
                depth += 1;
            } else if t.is_punct(b')')
                || t.is_punct(b']')
                || (t.is_punct(b'>') && !self.tokens[i - 1].is_punct(b'-'))
            {
                depth -= 1;
            } else if t.is_punct(b',') && depth == 0 {
                pieces.push((piece_start, i));
                piece_start = i + 1;
            }
        }
        if piece_start < end {
            pieces.push((piece_start, end));
        }
        for (ps, pe) in pieces {
            // A `self` receiver: any piece whose idents are within
            // {self, mut} plus `&`/lifetime sugar.
            let idents: Vec<&str> = (ps..pe)
                .filter(|&i| self.tokens[i].kind == TokenKind::Ident)
                .map(|i| self.text(i))
                .collect();
            if idents.contains(&"self") {
                sig.has_self = true;
                continue;
            }
            // Split at the first top-level `:` (not `::`).
            let mut colon = None;
            let mut d = 0i64;
            for i in ps..pe {
                let t = &self.tokens[i];
                if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'<') {
                    d += 1;
                } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'>') {
                    d -= 1;
                } else if t.is_punct(b':')
                    && d == 0
                    && !(i + 1 < pe && self.tokens[i + 1].is_punct(b':'))
                    && !(i > ps && self.tokens[i - 1].is_punct(b':'))
                {
                    colon = Some(i);
                    break;
                }
            }
            let Some(colon) = colon else { continue };
            let names = (ps..colon)
                .filter(|&i| self.tokens[i].kind == TokenKind::Ident)
                .map(|i| self.text(i).to_owned())
                .filter(|n| n != "mut" && n != "ref")
                .collect();
            sig.params.push(Param {
                names,
                ty: self.span_text(colon + 1, pe),
            });
        }
        sig
    }

    /// Parses a `mod` / `trait` / `impl` item, recursing into its
    /// body.
    #[allow(clippy::too_many_arguments)] // item-shape parser; the fields land in one struct
    fn parse_block_item(
        &mut self,
        kind: ItemKind,
        item_start: usize,
        kw: usize,
        end: usize,
        attrs: Vec<String>,
        doc: String,
        vis_pub: bool,
        test: bool,
    ) -> Item {
        let line = self.tokens[kw].line;
        let mut i = self.skip_comments(kw + 1, end);
        let name = if kind == ItemKind::Impl {
            self.impl_self_type(&mut i, end)
        } else if i < end && self.tokens[i].kind == TokenKind::Ident {
            let n = self.text(i).to_owned();
            i += 1;
            n
        } else {
            String::new()
        };
        while i < end && !self.tokens[i].is_punct(b'{') && !self.tokens[i].is_punct(b';') {
            i += 1;
        }
        let (body, children, extent_end) = if i < end && self.tokens[i].is_punct(b'{') {
            let close = self.match_delim(i, end, b'{', b'}');
            let children = self.items(i + 1, close, test);
            (Some((i + 1, close)), children, close + 1)
        } else {
            (None, Vec::new(), (i + 1).min(end))
        };
        Item {
            kind,
            name,
            attrs,
            doc,
            vis_pub,
            line,
            extent: (item_start, extent_end),
            body,
            sig: FnSig::default(),
            children,
            test,
        }
    }

    /// Extracts the self-type name from an impl header: the last
    /// angle-depth-0 ident after `for` (trait impls) or after the
    /// generics (inherent impls). Leaves `i` after the header scan.
    fn impl_self_type(&self, i: &mut usize, end: usize) -> String {
        let mut j = self.skip_comments(*i, end);
        if j < end && self.tokens[j].is_punct(b'<') {
            j = self.skip_angles(j, end);
        }
        let mut name = String::new();
        let mut angle = 0i64;
        while j < end && !self.tokens[j].is_punct(b'{') {
            let t = &self.tokens[j];
            if t.is_punct(b'<') {
                angle += 1;
            } else if t.is_punct(b'>') && !(j > 0 && self.tokens[j - 1].is_punct(b'-')) {
                angle -= 1;
            } else if angle == 0 && t.kind == TokenKind::Ident {
                let text = self.text(j);
                if text == "for" {
                    // `impl Trait for Type`: the self type restarts here.
                    name.clear();
                } else if text == "where" {
                    break;
                } else {
                    // `a::b::Type`: later segments overwrite.
                    text.clone_into(&mut name);
                }
            }
            j += 1;
        }
        *i = j;
        name
    }

    /// Any other item: consumed to its `;` or balanced `{ … }`
    /// (whichever comes first at depth 0), without recursing.
    #[allow(clippy::too_many_arguments)] // item-shape parser; the fields land in one struct
    fn parse_other(
        &mut self,
        item_start: usize,
        kw: usize,
        end: usize,
        attrs: Vec<String>,
        doc: String,
        vis_pub: bool,
        test: bool,
    ) -> Item {
        let line = self.tokens[kw].line;
        let keyword = if self.tokens[kw].kind == TokenKind::Ident {
            self.text(kw).to_owned()
        } else {
            String::new()
        };
        // The name, when the shape has one (`struct X`, `const X`,
        // `macro_rules! x`).
        let mut name = String::new();
        let probe = self.skip_comments(kw + 1, end);
        if probe < end && self.tokens[probe].kind == TokenKind::Ident {
            self.text(probe).clone_into(&mut name);
        } else if probe + 1 < end
            && self.tokens[probe].is_punct(b'!')
            && self.tokens[probe + 1].kind == TokenKind::Ident
        {
            self.text(probe + 1).clone_into(&mut name);
        }
        let mut i = kw;
        let mut extent_end = end;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct(b';') {
                extent_end = i + 1;
                break;
            }
            if t.is_punct(b'{') || t.is_punct(b'[') {
                // `const X: T = { … };` continues past the block;
                // `struct X { … }` and macro bodies end at it.
                let (o, c) = if t.is_punct(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                let close = self.match_delim(i, end, o, c);
                if keyword == "const" || keyword == "static" || keyword == "type" {
                    i = close + 1;
                    continue;
                }
                extent_end = close + 1;
                break;
            }
            if t.is_punct(b'(') {
                i = self.match_delim(i, end, b'(', b')') + 1;
                continue;
            }
            i += 1;
        }
        if i >= end {
            extent_end = end;
        }
        Item {
            kind: ItemKind::Other,
            name,
            attrs,
            doc,
            vis_pub,
            line,
            extent: (item_start, extent_end),
            body: None,
            sig: FnSig::default(),
            children: Vec::new(),
            test,
        }
    }
}

/// `true` for attributes that mark an item test-only.
fn attr_is_test(attr: &str) -> bool {
    let squeezed: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    squeezed == "#[test]"
        || squeezed.starts_with("#[cfg(test")
        || squeezed.starts_with("#[cfg(any(test")
        || squeezed.starts_with("#[cfg(all(test")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Token>, ItemTree) {
        let toks = lex(src);
        let tree = ItemTree::parse(&toks, src);
        (toks, tree)
    }

    #[test]
    fn free_fn_and_method_are_qualified() {
        let src = "fn free() {}\nimpl Widget {\n    pub fn method(&self) -> u64 { 0 }\n}\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qualified, "free");
        assert!(fns[0].is_free);
        assert_eq!(fns[1].qualified, "Widget::method");
        assert!(!fns[1].is_free);
        assert!(fns[1].item.vis_pub);
        assert!(fns[1].item.sig.has_self);
        assert_eq!(fns[1].item.sig.ret, "u64");
    }

    #[test]
    fn trait_impl_self_type_wins_over_trait_name() {
        let src = "impl Kernel for ThresholdKernel { fn decide(&self) {} }\n\
                   impl<R: LocalRule + ?Sized> Kernel for GenericKernel<'_, R> { fn go(&self) {} }\n\
                   impl SampleRange<f64> for core::ops::Range<f64> { fn sample(self) {} }\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        let names: Vec<&str> = fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "ThresholdKernel::decide",
                "GenericKernel::go",
                "Range::sample"
            ]
        );
    }

    #[test]
    fn cfg_test_mod_marks_children_and_lines() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let (toks, t) = tree(src);
        let fns = t.functions();
        assert!(
            !fns.iter()
                .find(|f| f.qualified == "live")
                .unwrap()
                .item
                .test
        );
        assert!(fns.iter().find(|f| f.qualified == "t").unwrap().item.test);
        assert!(
            !fns.iter()
                .find(|f| f.qualified == "after")
                .unwrap()
                .item
                .test
        );
        let lines = t.test_lines(&toks, 7);
        assert!(!lines[0]);
        assert!(lines[2] && lines[3] && lines[4]);
        assert!(!lines[6]);
    }

    #[test]
    fn cfg_test_single_fn_is_test() {
        let src = "#[cfg(test)]\nfn helper() { 1 }\nfn live() {}\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert!(fns[0].item.test);
        assert!(!fns[1].item.test);
    }

    #[test]
    fn params_and_types_are_captured() {
        let src = "fn f(seed: u64, mut xs: Vec<f64>, (a, b): (u8, u8)) -> Option<StdRng> {}";
        let (_, t) = tree(src);
        let sig = &t.functions()[0].item.sig;
        assert_eq!(sig.params.len(), 3);
        assert_eq!(sig.params[0].names, vec!["seed"]);
        assert_eq!(sig.params[0].ty, "u64");
        assert_eq!(sig.params[1].names, vec!["xs"]);
        assert_eq!(sig.params[1].ty, "Vec < f64 >");
        assert_eq!(sig.params[2].names, vec!["a", "b"]);
        assert_eq!(sig.ret, "Option < StdRng >");
    }

    #[test]
    fn array_return_type_does_not_truncate_the_fn() {
        // `-> [u64; 4]` carries a `;` inside the brackets; the return
        // scanner must not mistake it for the end of a bodiless decl.
        let src = "pub fn threefry4x64(key: &Key, ctr: [u64; 4]) -> [u64; 4] {\n    ctr\n}\nfn lanes<const L: usize>() -> [[u64; L]; 4] { todo() }\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].item.sig.ret, "[ u64 ; 4 ]");
        assert!(fns[0].item.body.is_some());
        assert!(fns[1].item.body.is_some());
    }

    #[test]
    fn fn_with_generics_and_where_clause() {
        let src = "pub fn run<K: Kernel, F: Fn() -> u64>(k: &K, f: F) -> u64 where K: Sync { f() }";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns[0].qualified, "run");
        assert_eq!(fns[0].item.sig.params.len(), 2);
        assert_eq!(fns[0].item.sig.ret, "u64");
        assert!(fns[0].item.body.is_some());
    }

    #[test]
    fn doc_text_attaches_to_the_item() {
        let src =
            "/// Does things.\n///\n/// # Panics\n///\n/// Always.\npub fn f() { panic!(\"x\") }\n";
        let (_, t) = tree(src);
        let f = &t.functions()[0];
        assert!(f.item.doc.contains("# Panics"));
    }

    #[test]
    fn tolerances_mod_lines_are_mapped() {
        let src = "mod tolerances {\n    pub const EPS: f64 = 1e-9;\n}\nconst OTHER: f64 = 0.5;\n";
        let (toks, t) = tree(src);
        let lines = t.mod_lines("tolerances", &toks, 4);
        assert!(lines[0] && lines[1] && lines[2]);
        assert!(!lines[3]);
    }

    #[test]
    fn const_item_with_block_initializer_ends_at_semicolon() {
        let src = "const X: [u8; 2] = { let a = 1; [a, a] };\nfn after() {}\n";
        let (_, t) = tree(src);
        assert_eq!(t.items.len(), 2);
        assert_eq!(t.items[1].name, "after");
    }

    #[test]
    fn macro_invocations_and_macro_rules_are_consumed() {
        let src = "int_sample_range!(\n    i32 => u32,\n);\nmacro_rules! keep { ($b:expr) => {{ }}; }\nfn after() {}\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qualified, "after");
    }

    #[test]
    fn trait_decl_methods_have_no_body() {
        let src = "trait K: Sync { fn players(&self) -> usize;\n fn go(&self) { } }";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns.len(), 2);
        assert!(fns[0].item.body.is_none());
        assert!(fns[1].item.body.is_some());
        assert_eq!(fns[0].qualified, "K::players");
    }

    #[test]
    fn nested_mods_qualify_and_inherit() {
        let src = "pub mod rngs { pub fn helper() {} }\n#[cfg(test)]\nmod outer { mod inner { fn deep() {} } }\n";
        let (_, t) = tree(src);
        let fns = t.functions();
        assert_eq!(fns[0].qualified, "helper");
        assert!(fns[0].is_free);
        assert!(
            fns.iter()
                .find(|f| f.qualified == "deep")
                .unwrap()
                .item
                .test
        );
    }
}
