//! The RNG stream-fingerprint gate: token-hashes of the
//! stream-critical functions, committed to
//! `results/stream_fingerprint.json`, checked on every `cargo xtask
//! analyze`.
//!
//! The engine's contract is that the RNG stream is a pure function of
//! `(seed, batch)` and of `RNG_STREAM_VERSION`: any change to how
//! draws are produced or consumed must bump the version (see the
//! `engine` module docs). The convention was previously social; this
//! gate makes it mechanical. Each critical function's non-comment
//! token texts are FNV-1a-hashed, so reformatting and comment edits
//! never trip the gate, while any semantic token change does —
//! forcing the author to either revert or bump the version and
//! regenerate with `cargo xtask analyze --update-fingerprint`.

use crate::lints::Violation;
use crate::metrics::{parse_json, Json};
use crate::source::SourceFile;
use std::fmt::Write as _;

/// Repo-relative path of the committed fingerprint.
pub const FINGERPRINT_FILE: &str = "results/stream_fingerprint.json";

/// Check id, as used in waivers and `--list` output.
pub const CHECK_ID: &str = "stream-fingerprint";

/// One-line description for `--list` output.
pub const SUMMARY: &str =
    "RNG-stream-critical fns must not change without an RNG_STREAM_VERSION bump";

/// The file that defines `RNG_STREAM_VERSION`.
const VERSION_FILE: &str = "crates/simulator/src/engine.rs";

/// `(path, qualified fn)` pairs whose token streams determine the RNG
/// stream: the generator cores (sequential xoshiro and the stream-v3
/// Threefry counter pipeline), the per-batch seeding and keying, the
/// draw loops, and every uniform source. Growing this list is cheap;
/// every entry is one more function that cannot drift silently.
pub const CRITICAL_FNS: &[(&str, &str)] = &[
    ("crates/rand/src/lib.rs", "splitmix64"),
    ("crates/rand/src/lib.rs", "StdRng::seed_from_u64"),
    ("crates/rand/src/lib.rs", "StdRng::next_u64"),
    ("crates/rand/src/lib.rs", "unit_f64"),
    ("crates/rand/src/lib.rs", "Range::sample_from"),
    ("crates/rand/src/lib.rs", "below"),
    ("crates/rand/src/lib.rs", "CounterKey::from_seed"),
    ("crates/rand/src/lib.rs", "inject"),
    ("crates/rand/src/lib.rs", "threefry4x64_lanes"),
    ("crates/rand/src/lib.rs", "threefry4x64"),
    ("crates/rand/src/lib.rs", "word_to_unit"),
    ("crates/simulator/src/engine.rs", "splitmix"),
    ("crates/simulator/src/engine.rs", "batch_rng"),
    ("crates/simulator/src/engine.rs", "run_batch"),
    ("crates/simulator/src/engine.rs", "lane_key"),
    ("crates/simulator/src/engine.rs", "run_lane_batch"),
    (
        "crates/simulator/src/kernel.rs",
        "ScalarUniforms::next_unit",
    ),
    ("crates/simulator/src/kernel.rs", "BufferedUniforms::refill"),
    (
        "crates/simulator/src/kernel.rs",
        "BufferedUniforms::next_unit",
    ),
    ("crates/simulator/src/kernel.rs", "LaneUniforms::fill"),
    ("crates/simulator/src/kernel.rs", "lane_draw"),
];

/// A computed fingerprint: the stream version plus one token hash per
/// critical function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// The `RNG_STREAM_VERSION` the hashes were taken under.
    pub version: u64,
    /// `(key, hash, line)` per critical fn, sorted by key; the key is
    /// `<path>::<qualified-fn>` and the line is where the fn starts
    /// (kept for violation reporting, not serialized).
    pub entries: Vec<(String, u64, usize)>,
}

/// FNV-1a 64 over the byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Token-hash of one function: its non-comment token texts, NUL
/// separated, over the whole item extent (attributes and signature
/// included — they shape the compiled stream too).
fn token_hash(file: &SourceFile, extent: (usize, usize)) -> u64 {
    let bytes = file
        .code
        .iter()
        .filter(|&&i| i >= extent.0 && i < extent.1)
        .flat_map(|&i| file.tok(i).bytes().chain(std::iter::once(0u8)));
    fnv1a(bytes)
}

/// Reads `RNG_STREAM_VERSION` out of the engine source's tokens.
fn stream_version(files: &[SourceFile]) -> Option<u64> {
    let file = files.iter().find(|f| f.path == VERSION_FILE)?;
    let code = &file.code;
    let pos = code
        .iter()
        .position(|&i| file.tok(i) == "RNG_STREAM_VERSION")?;
    let mut k = pos + 1;
    while k < code.len() && !file.tokens[code[k]].is_punct(b'=') {
        if file.tokens[code[k]].is_punct(b';') {
            return None;
        }
        k += 1;
    }
    code.get(k + 1).and_then(|&i| file.tok(i).parse().ok())
}

/// Computes the current fingerprint over `critical` from parsed
/// sources. Functions or the version marker that cannot be found are
/// reported as violations rather than silently skipped — a renamed
/// critical fn must update the gate, not evade it.
pub fn compute(critical: &[(&str, &str)], files: &[SourceFile]) -> (Fingerprint, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for &(path, qualified) in critical {
        let found = files.iter().find(|f| f.path == path).and_then(|file| {
            file.tree
                .functions()
                .into_iter()
                .find(|f| f.qualified == qualified)
                .map(|f| (token_hash(file, f.item.extent), f.item.line))
        });
        match found {
            Some((hash, line)) => entries.push((format!("{path}::{qualified}"), hash, line)),
            None => violations.push(Violation {
                lint: CHECK_ID,
                path: path.to_owned(),
                line: 1,
                message: format!(
                    "stream-critical fn `{qualified}` not found — if it moved or was \
                     renamed, update fingerprint::CRITICAL_FNS and run \
                     `cargo xtask analyze --update-fingerprint`"
                ),
            }),
        }
    }
    entries.sort();
    let version = stream_version(files).unwrap_or_else(|| {
        violations.push(Violation {
            lint: CHECK_ID,
            path: VERSION_FILE.to_owned(),
            line: 1,
            message: "could not read `RNG_STREAM_VERSION` from the engine source".to_owned(),
        });
        0
    });
    (Fingerprint { version, entries }, violations)
}

impl Fingerprint {
    /// Serializes to the committed `stream-fingerprint/v1` JSON form:
    /// sorted keys, 16-hex-digit hashes, trailing newline — byte
    /// reproducible from the same sources.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"stream-fingerprint/v1\",\n");
        let _ = write!(
            out,
            "  \"rng_stream_version\": {},\n  \"functions\": {{\n",
            self.version
        );
        for (idx, (key, hash, _)) in self.entries.iter().enumerate() {
            let comma = if idx + 1 == self.entries.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    \"{key}\": \"{hash:016x}\"{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong schema tag, or a
    /// non-hex hash value.
    pub fn parse(text: &str) -> Result<Fingerprint, String> {
        let doc = parse_json(text)?;
        let fields = doc.as_object("fingerprint document")?;
        let schema = get(fields, "schema")?.as_string("schema")?;
        if schema != "stream-fingerprint/v1" {
            return Err(format!("unsupported fingerprint schema `{schema}`"));
        }
        let version = get(fields, "rng_stream_version")?.as_u64("rng_stream_version")?;
        let mut entries = Vec::new();
        for (key, value) in get(fields, "functions")?.as_object("functions")? {
            let hex = value.as_string(key)?;
            let hash = u64::from_str_radix(hex, 16)
                .map_err(|_| format!("`{key}`: hash `{hex}` is not hex"))?;
            entries.push((key.clone(), hash, 1));
        }
        entries.sort();
        Ok(Fingerprint { version, entries })
    }
}

/// Object-field lookup shared with the metrics validator's style.
fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing `{key}`"))
}

/// The gate: compares the current fingerprint of `critical` against
/// the committed document text (`None` when the file is absent).
#[must_use]
pub fn check(
    critical: &[(&str, &str)],
    files: &[SourceFile],
    committed: Option<&str>,
) -> Vec<Violation> {
    let (current, mut violations) = compute(critical, files);
    let committed = match committed.map(Fingerprint::parse) {
        Some(Ok(fp)) => fp,
        Some(Err(err)) => {
            violations.push(Violation {
                lint: CHECK_ID,
                path: FINGERPRINT_FILE.to_owned(),
                line: 1,
                message: format!(
                    "malformed fingerprint: {err} — run `cargo xtask analyze --update-fingerprint`"
                ),
            });
            return violations;
        }
        None => {
            violations.push(Violation {
                lint: CHECK_ID,
                path: FINGERPRINT_FILE.to_owned(),
                line: 1,
                message: "missing committed fingerprint — run \
                          `cargo xtask analyze --update-fingerprint`"
                    .to_owned(),
            });
            return violations;
        }
    };
    if committed.version != current.version {
        // The bump already happened (the deliberate-change path); the
        // only remaining step is regenerating the committed hashes.
        violations.push(Violation {
            lint: CHECK_ID,
            path: FINGERPRINT_FILE.to_owned(),
            line: 1,
            message: format!(
                "fingerprint is for RNG_STREAM_VERSION {} but the engine declares {} — \
                 run `cargo xtask analyze --update-fingerprint` to re-attest",
                committed.version, current.version
            ),
        });
        return violations;
    }
    for (key, hash, line) in &current.entries {
        match committed.entries.iter().find(|(k, _, _)| k == key) {
            Some((_, committed_hash, _)) if committed_hash == hash => {}
            Some(_) => {
                let path = key.split("::").next().unwrap_or(key).to_owned();
                violations.push(Violation {
                    lint: CHECK_ID,
                    path,
                    line: *line,
                    message: format!(
                        "token stream of stream-critical fn `{}` changed without an \
                         RNG_STREAM_VERSION bump — revert, or bump the version \
                         (documenting the stream change) and run \
                         `cargo xtask analyze --update-fingerprint`",
                        key.rsplit("::").next().unwrap_or(key)
                    ),
                });
            }
            None => violations.push(Violation {
                lint: CHECK_ID,
                path: FINGERPRINT_FILE.to_owned(),
                line: 1,
                message: format!(
                    "`{key}` is not in the committed fingerprint — run \
                     `cargo xtask analyze --update-fingerprint`"
                ),
            }),
        }
    }
    for (key, _, _) in &committed.entries {
        if !current.entries.iter().any(|(k, _, _)| k == key) {
            violations.push(Violation {
                lint: CHECK_ID,
                path: FINGERPRINT_FILE.to_owned(),
                line: 1,
                message: format!(
                    "committed fingerprint entry `{key}` no longer corresponds to a \
                     critical fn — run `cargo xtask analyze --update-fingerprint`"
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    const CRITICAL: &[(&str, &str)] = &[("crates/simulator/src/kernel.rs", "Buf::next_unit")];

    fn kernel_file(body: &str) -> SourceFile {
        let src = format!("impl Buf {{\n    fn next_unit(&mut self) -> f64 {{ {body} }}\n}}\n");
        SourceFile::parse("crates/simulator/src/kernel.rs", FileKind::Lib, &src)
    }

    fn engine_file(version: u64) -> SourceFile {
        let src = format!("pub(crate) const RNG_STREAM_VERSION: u32 = {version};\n");
        SourceFile::parse("crates/simulator/src/engine.rs", FileKind::Lib, &src)
    }

    fn committed(files: &[SourceFile]) -> String {
        let (fp, violations) = compute(CRITICAL, files);
        assert!(violations.is_empty());
        fp.render()
    }

    #[test]
    fn matching_fingerprint_is_clean() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(2)];
        let doc = committed(&files);
        assert!(check(CRITICAL, &files, Some(doc.as_str())).is_empty());
    }

    #[test]
    fn comment_and_whitespace_edits_do_not_trip_the_gate() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(2)];
        let doc = committed(&files);
        let reformatted = vec![
            SourceFile::parse(
                "crates/simulator/src/kernel.rs",
                FileKind::Lib,
                "impl Buf {\n    // hot path\n    fn next_unit(&mut self) -> f64 {\n        self.buffer[0]\n    }\n}\n",
            ),
            engine_file(2),
        ];
        assert!(check(CRITICAL, &reformatted, Some(doc.as_str())).is_empty());
    }

    #[test]
    fn token_change_without_bump_fires() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(2)];
        let doc = committed(&files);
        let mutated = vec![kernel_file("self.buffer[1]"), engine_file(2)];
        let violations = check(CRITICAL, &mutated, Some(doc.as_str()));
        assert_eq!(violations.len(), 1);
        assert!(violations[0]
            .message
            .contains("without an RNG_STREAM_VERSION bump"));
        assert_eq!(violations[0].path, "crates/simulator/src/kernel.rs");
    }

    #[test]
    fn version_bump_demands_reattestation_then_passes() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(2)];
        let doc = committed(&files);
        let bumped = vec![kernel_file("self.buffer[1]"), engine_file(3)];
        let violations = check(CRITICAL, &bumped, Some(doc.as_str()));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("--update-fingerprint"));
        // Regenerating under the new version settles the gate.
        let regenerated = committed(&bumped);
        assert!(check(CRITICAL, &bumped, Some(regenerated.as_str())).is_empty());
    }

    #[test]
    fn missing_fingerprint_and_missing_fn_are_reported() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(2)];
        let absent = check(CRITICAL, &files, None);
        assert_eq!(absent.len(), 1);
        assert!(absent[0].message.contains("missing committed fingerprint"));
        let no_fn = vec![engine_file(2)];
        let (_, violations) = compute(CRITICAL, &no_fn);
        assert!(violations.iter().any(|v| v.message.contains("not found")));
    }

    #[test]
    fn render_parse_round_trip() {
        let files = vec![kernel_file("self.buffer[0]"), engine_file(7)];
        let (fp, _) = compute(CRITICAL, &files);
        let parsed = Fingerprint::parse(&fp.render()).unwrap();
        assert_eq!(parsed.version, 7);
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].0, fp.entries[0].0);
        assert_eq!(parsed.entries[0].1, fp.entries[0].1);
    }
}
