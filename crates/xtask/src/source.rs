//! Per-file source model shared by every pass: the token stream, the
//! item tree, the file's role in the workspace, which lines belong to
//! test-only regions, and any inline `xtask:allow` waivers.

use crate::lexer::{lex, Token};
use crate::tree::ItemTree;
use std::path::Path;

/// What role a file plays, which decides which passes apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: the default, and the strictest tier.
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/*`): terminal output
    /// is its job, so the print lint does not apply.
    Bin,
    /// Tests, benches and examples: panic-style assertions and prints
    /// are idiomatic there, so only the RNG passes apply.
    TestLike,
}

/// One parsed source file, ready for analysis.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub path: String,
    /// The file's analysis tier.
    pub kind: FileKind,
    /// The raw source text.
    pub text: String,
    /// The complete token stream (comments included).
    pub tokens: Vec<Token>,
    /// Indices into [`SourceFile::tokens`] of the non-comment tokens,
    /// in order — the stream the code-level passes walk.
    pub code: Vec<usize>,
    /// The item tree (scope structure).
    pub tree: ItemTree,
    /// The raw source lines (`lines[i]` is 1-based line `i + 1`).
    pub lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// `true` for lines inside a `mod tolerances { .. }` block (the
    /// named-constants convention recognised by the float lint).
    pub in_tolerances: Vec<bool>,
    /// Inline waivers: `allows[i]` holds the check ids allowed on
    /// 1-based line `i + 1`.
    pub allows: Vec<Vec<String>>,
}

impl SourceFile {
    /// Builds the model for one file.
    #[must_use]
    pub fn parse(repo_relative_path: &str, kind: FileKind, source: &str) -> SourceFile {
        let tokens = lex(source);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let tree = ItemTree::parse(&tokens, source);
        let lines: Vec<String> = source.lines().map(str::to_owned).collect();
        let line_count = lines.len();
        let in_test = tree.test_lines(&tokens, line_count);
        let in_tolerances = tree.mod_lines("tolerances", &tokens, line_count);
        let allows = inline_allows(&tokens, source, line_count);
        SourceFile {
            path: repo_relative_path.to_owned(),
            kind,
            text: source.to_owned(),
            tokens,
            code,
            tree,
            lines,
            in_test,
            in_tolerances,
            allows,
        }
    }

    /// The text of token `i` (an index into [`SourceFile::tokens`]).
    #[must_use]
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// `true` when 1-based `line` carries an inline allow for `check`.
    #[must_use]
    pub fn allowed(&self, check: &str, line: usize) -> bool {
        self.allows
            .get(line - 1)
            .is_some_and(|ids| ids.iter().any(|id| id == check))
    }

    /// `true` when 1-based `line` is inside test-only code.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Classifies a repo-relative path into a [`FileKind`].
#[must_use]
pub fn classify(path: &Path) -> FileKind {
    let p = path.to_string_lossy().replace('\\', "/");
    let test_like = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| p.contains(d))
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/");
    if test_like {
        return FileKind::TestLike;
    }
    if p.ends_with("/main.rs") || p.contains("/bin/") || p == "build.rs" || p.ends_with("/build.rs")
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Parses inline waivers of the form `xtask:allow(<check-id>): reason`
/// out of the comment tokens. The reason is mandatory — a waiver
/// without one is ignored, so it will still be reported.
///
/// A waiver on a pure-comment line (no code tokens starting on it)
/// also covers the next code line, so long reasons can sit above the
/// statement they waive instead of fighting rustfmt's line width as a
/// trailing comment.
fn inline_allows(tokens: &[Token], source: &str, line_count: usize) -> Vec<Vec<String>> {
    let mut allows = vec![Vec::new(); line_count];
    let mut has_code = vec![false; line_count];
    for t in tokens {
        if t.is_comment() {
            parse_allow_ids(t.text(source), &mut allows, t.line);
        } else if t.line <= line_count {
            has_code[t.line - 1] = true;
        }
    }
    for idx in 0..line_count {
        if allows[idx].is_empty() || has_code[idx] {
            continue;
        }
        let mut next = idx + 1;
        while next < line_count && !has_code[next] {
            next += 1;
        }
        if next < line_count {
            let carried = allows[idx].clone();
            allows[next].extend(carried);
        }
    }
    allows
}

/// Extracts every reasoned `xtask:allow(id): reason` from one comment
/// text into `allows[line - 1]`.
fn parse_allow_ids(comment: &str, allows: &mut [Vec<String>], line: usize) {
    let Some(slot) = allows.get_mut(line - 1) else {
        return;
    };
    let mut rest = comment;
    while let Some(pos) = rest.find("xtask:allow(") {
        rest = &rest[pos + "xtask:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let id = rest[..close].trim().to_owned();
        let after = &rest[close + 1..];
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if has_reason && !id.is_empty() {
            slot.push(id);
        }
        rest = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn classify_tiers() {
        assert_eq!(
            classify(Path::new("crates/decision/src/lib.rs")),
            FileKind::Lib
        );
        assert_eq!(classify(Path::new("src/bin/nocomm.rs")), FileKind::Bin);
        assert_eq!(
            classify(Path::new("crates/bench/benches/b.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("examples/quickstart.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("tests/paper_results.rs")),
            FileKind::TestLike
        );
    }

    #[test]
    fn test_module_region_is_tracked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_single_item_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    1\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn tolerances_module_region() {
        let src = "mod tolerances {\n    pub const EPS: f64 = 1e-9;\n}\nconst OTHER: f64 = 0.5;\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.in_tolerances[1]);
        assert!(!f.in_tolerances[3]);
    }

    #[test]
    fn inline_allow_requires_reason() {
        let src =
            "a(); // xtask:allow(no-panic): documented contract\nb(); // xtask:allow(no-panic)\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.allowed("no-panic", 1));
        assert!(!f.allowed("no-panic", 2));
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src =
            "// xtask:allow(no-panic): infallible by construction\n\nx.unwrap();\ny.unwrap();\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.allowed("no-panic", 1));
        assert!(f.allowed("no-panic", 3));
        assert!(!f.allowed("no-panic", 4));
    }

    #[test]
    fn allow_inside_string_literal_is_ignored() {
        // The old line scrubber blanked string contents before the
        // allow scan; the token model skips non-comment tokens, so a
        // waiver "quoted" in code never silences anything.
        let src = "let s = \"xtask:allow(no-panic): nope\"; s.unwrap();\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(!f.allowed("no-panic", 1));
    }
}
