//! Per-file source model shared by every lint: the scrubbed text,
//! the file's role in the workspace, which lines belong to test-only
//! regions, and any inline `xtask:allow` waivers.

use crate::scrub::{scrub, Scrubbed};
use std::path::Path;

/// What role a file plays, which decides which lints apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: the default, and the strictest tier.
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/*`): terminal output
    /// is its job, so the print lint does not apply.
    Bin,
    /// Tests, benches and examples: panic-style assertions and prints
    /// are idiomatic there, so only the RNG lint applies.
    TestLike,
}

/// One parsed source file, ready for linting.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub path: String,
    /// The file's lint tier.
    pub kind: FileKind,
    /// Scrubbed code and per-line comment text.
    pub scrubbed: Scrubbed,
    /// `lines[i]` is the scrubbed text of 1-based line `i + 1`.
    pub lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// `true` for lines inside a `mod tolerances { .. }` block (the
    /// named-constants convention recognised by the float lint).
    pub in_tolerances: Vec<bool>,
    /// Inline waivers: `allows[i]` holds the lint ids allowed on
    /// 1-based line `i + 1`.
    pub allows: Vec<Vec<String>>,
}

impl SourceFile {
    /// Builds the model for one file.
    #[must_use]
    pub fn parse(repo_relative_path: &str, kind: FileKind, source: &str) -> SourceFile {
        let scrubbed = scrub(source);
        let lines: Vec<String> = scrubbed.code.lines().map(str::to_owned).collect();
        let in_test = attribute_regions(&lines, "#[cfg(test)");
        let in_tolerances = mod_regions(&lines, "mod tolerances");
        let allows = inline_allows(&scrubbed.comments, &lines);
        SourceFile {
            path: repo_relative_path.to_owned(),
            kind,
            scrubbed,
            lines,
            in_test,
            in_tolerances,
            allows,
        }
    }

    /// `true` when 1-based `line` carries an inline allow for `lint`.
    #[must_use]
    pub fn allowed(&self, lint: &str, line: usize) -> bool {
        self.allows
            .get(line - 1)
            .is_some_and(|ids| ids.iter().any(|id| id == lint))
    }

    /// `true` when 1-based `line` is inside test-only code.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }
}

/// Classifies a repo-relative path into a [`FileKind`].
#[must_use]
pub fn classify(path: &Path) -> FileKind {
    let p = path.to_string_lossy().replace('\\', "/");
    let test_like = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| p.contains(d))
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/");
    if test_like {
        return FileKind::TestLike;
    }
    if p.ends_with("/main.rs") || p.contains("/bin/") || p == "build.rs" || p.ends_with("/build.rs")
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Marks the lines covered by any item annotated with an attribute
/// starting with `marker` (e.g. `#[cfg(test)`), by brace-matching the
/// first block that follows the attribute.
fn attribute_regions(lines: &[String], marker: &str) -> Vec<bool> {
    let mut region = vec![false; lines.len()];
    let mut armed = false;
    let mut depth = 0i64;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if depth > 0 {
            region[idx] = true;
            depth += brace_delta(line);
            if depth <= 0 {
                depth = 0;
            }
            continue;
        }
        if trimmed.starts_with(marker) {
            region[idx] = true;
            let delta = brace_delta(line);
            if delta > 0 {
                depth = delta; // attribute and item share the line
            } else {
                armed = true;
            }
            continue;
        }
        if armed {
            region[idx] = true;
            // Attribute / doc lines between the marker and the item
            // keep the arm; the first braced item consumes it.
            let delta = brace_delta(line);
            if delta > 0 {
                armed = false;
                depth = delta;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") && trimmed.ends_with(';') {
                // A braceless item (e.g. `#[cfg(test)] use x;`).
                armed = false;
            }
        }
    }
    region
}

/// Marks the lines of every `mod <name> { .. }` block whose header
/// starts with `header` (after optional `pub `).
fn mod_regions(lines: &[String], header: &str) -> Vec<bool> {
    let mut region = vec![false; lines.len()];
    let mut depth = 0i64;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim().trim_start_matches("pub ");
        if depth > 0 {
            region[idx] = true;
            depth += brace_delta(line);
            if depth <= 0 {
                depth = 0;
            }
            continue;
        }
        if trimmed.starts_with(header) {
            region[idx] = true;
            depth = brace_delta(line).max(1);
        }
    }
    region
}

/// Net `{`/`}` balance of a (scrubbed) line.
fn brace_delta(line: &str) -> i64 {
    let mut delta = 0i64;
    for b in line.bytes() {
        match b {
            b'{' => delta += 1,
            b'}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Parses inline waivers of the form `xtask:allow(<lint-id>): reason`
/// out of the per-line comment text. The reason is mandatory — a
/// waiver without one is ignored, so it will still be reported.
///
/// A waiver on a pure-comment line (no code) also covers the next
/// code line, so long reasons can sit above the statement they waive
/// instead of fighting rustfmt's line width as a trailing comment.
fn inline_allows(comments: &[String], code_lines: &[String]) -> Vec<Vec<String>> {
    let line_count = code_lines.len();
    let mut allows = vec![Vec::new(); line_count];
    for (idx, comment) in comments.iter().enumerate().take(line_count) {
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("xtask:allow(") {
            rest = &rest[pos + "xtask:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let id = rest[..close].trim().to_owned();
            let after = &rest[close + 1..];
            let has_reason = after
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            if has_reason && !id.is_empty() {
                allows[idx].push(id);
            }
            rest = after;
        }
    }
    for idx in 0..line_count {
        if allows[idx].is_empty() || !code_lines[idx].trim().is_empty() {
            continue;
        }
        let mut next = idx + 1;
        while next < line_count && code_lines[next].trim().is_empty() {
            next += 1;
        }
        if next < line_count {
            let carried = allows[idx].clone();
            allows[next].extend(carried);
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn classify_tiers() {
        assert_eq!(
            classify(Path::new("crates/decision/src/lib.rs")),
            FileKind::Lib
        );
        assert_eq!(classify(Path::new("src/bin/nocomm.rs")), FileKind::Bin);
        assert_eq!(
            classify(Path::new("crates/bench/benches/b.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("examples/quickstart.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("tests/paper_results.rs")),
            FileKind::TestLike
        );
    }

    #[test]
    fn test_module_region_is_tracked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_single_item_region() {
        let src = "#[cfg(test)]\nfn helper() {\n    1\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn tolerances_module_region() {
        let src = "mod tolerances {\n    pub const EPS: f64 = 1e-9;\n}\nconst OTHER: f64 = 0.5;\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.in_tolerances[1]);
        assert!(!f.in_tolerances[3]);
    }

    #[test]
    fn inline_allow_requires_reason() {
        let src =
            "a(); // xtask:allow(no-panic): documented contract\nb(); // xtask:allow(no-panic)\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.allowed("no-panic", 1));
        assert!(!f.allowed("no-panic", 2));
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src =
            "// xtask:allow(no-panic): infallible by construction\n\nx.unwrap();\ny.unwrap();\n";
        let f = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(f.allowed("no-panic", 1));
        assert!(f.allowed("no-panic", 3));
        assert!(!f.allowed("no-panic", 4));
    }
}
