//! Validation of the committed `threshold-table/v1` artifact
//! (`results/threshold_table.json`), the certified optimal-threshold
//! table produced by `cargo xtask table`.
//!
//! Structural checks run here (schema and rule tags, contiguous `n`
//! from 2, well-ordered enclosures inside `(0, 1)`, certified widths,
//! known methods); the caller follows up with semantic spot
//! re-certification of a few rows via
//! [`decision::certified::spot_check`].

use crate::metrics::{get, get_in, parse_json, Json};

/// Schema tag the document must carry (kept in sync with
/// `decision::certified::table::SCHEMA`).
pub const SCHEMA: &str = "threshold-table/v1";

/// Certified width bound every enclosure must satisfy (matches the
/// generator's acceptance target).
pub const WIDTH_BOUND: f64 = 1e-9;

/// One structurally validated row of the table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRow {
    /// Number of players.
    pub n: u64,
    /// Certified `β*_n` enclosure.
    pub beta_lo: f64,
    /// Certified `β*_n` enclosure.
    pub beta_hi: f64,
    /// Certified `P*_n` enclosure.
    pub p_lo: f64,
    /// Certified `P*_n` enclosure.
    pub p_hi: f64,
    /// Certifying pipeline (`"exact"` or `"ball"`).
    pub method: String,
}

/// Parses and structurally validates a `threshold-table/v1` document.
///
/// # Errors
///
/// Returns a message naming the first malformed field: wrong schema
/// or capacity rule, non-contiguous `n`, an enclosure that is
/// inverted, out of `(0, 1)` (`p_hi` may touch 1), wider than
/// [`WIDTH_BOUND`], or an unknown method.
pub fn validate_table_document(text: &str) -> Result<Vec<TableRow>, String> {
    let root = parse_json(text)?;
    let fields = root.as_object("document root")?;
    let schema = get(fields, "schema")?.as_string("schema")?;
    if schema != SCHEMA {
        return Err(format!("schema must be {SCHEMA:?}, found {schema:?}"));
    }
    let rule = get(fields, "delta_rule")?.as_string("delta_rule")?;
    if rule != "n/3" {
        return Err(format!("delta_rule must be \"n/3\", found {rule:?}"));
    }
    let rows = get(fields, "rows")?.as_array("rows")?;
    if rows.is_empty() {
        return Err("rows must be non-empty".to_string());
    }
    let mut out = Vec::with_capacity(rows.len());
    for (idx, row) in rows.iter().enumerate() {
        let row = parse_row(row, idx)?;
        let expect = idx as u64 + 2;
        if row.n != expect {
            return Err(format!(
                "rows[{idx}]: n must be contiguous from 2 (expected {expect}, found {})",
                row.n
            ));
        }
        check_enclosure(idx, "beta", row.beta_lo, row.beta_hi, false)?;
        check_enclosure(idx, "p", row.p_lo, row.p_hi, true)?;
        if row.method != "exact" && row.method != "ball" {
            return Err(format!(
                "rows[{idx}]: method must be \"exact\" or \"ball\", found {:?}",
                row.method
            ));
        }
        out.push(row);
    }
    Ok(out)
}

/// Extracts one row's fields.
fn parse_row(row: &Json, idx: usize) -> Result<TableRow, String> {
    let what = format!("rows[{idx}]");
    let fields = row.as_object(&what)?;
    let f = |key: &str| -> Result<f64, String> {
        match get_in(fields, key, &what)? {
            Json::Number(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("{what}.{key}: unparseable number {raw:?}")),
            other => Err(format!(
                "{what}.{key} must be a number, found {}",
                other.type_name()
            )),
        }
    };
    Ok(TableRow {
        n: get_in(fields, "n", &what)?.as_u64(&format!("{what}.n"))?,
        beta_lo: f("beta_lo")?,
        beta_hi: f("beta_hi")?,
        p_lo: f("p_lo")?,
        p_hi: f("p_hi")?,
        method: get_in(fields, "method", &what)?
            .as_string(&format!("{what}.method"))?
            .to_string(),
    })
}

/// A certified enclosure must be well-ordered, interior to `(0, 1)`
/// (the upper end may touch 1 when `allow_one`), and no wider than
/// [`WIDTH_BOUND`].
fn check_enclosure(
    idx: usize,
    what: &str,
    lo: f64,
    hi: f64,
    allow_one: bool,
) -> Result<(), String> {
    if !(lo.is_finite() && hi.is_finite()) {
        return Err(format!("rows[{idx}]: {what} enclosure must be finite"));
    }
    if lo > hi {
        return Err(format!(
            "rows[{idx}]: {what} enclosure is inverted ({lo} > {hi})"
        ));
    }
    let hi_ok = if allow_one { hi <= 1.0 } else { hi < 1.0 };
    if lo <= 0.0 || !hi_ok {
        return Err(format!(
            "rows[{idx}]: {what} enclosure [{lo}, {hi}] leaves the open unit interval"
        ));
    }
    if hi - lo > WIDTH_BOUND {
        return Err(format!(
            "rows[{idx}]: {what} enclosure width {:e} exceeds {WIDTH_BOUND:e}",
            hi - lo
        ));
    }
    Ok(())
}

/// Picks up to `count` row indices spread across the table (always
/// including the first and last) for semantic spot re-certification.
#[must_use]
pub fn spot_indices(len: usize, count: usize) -> Vec<usize> {
    if len == 0 || count == 0 {
        return Vec::new();
    }
    let picks = count.min(len);
    let mut out: Vec<usize> = (0..picks)
        .map(|i| {
            if picks == 1 {
                0
            } else {
                i * (len - 1) / (picks - 1)
            }
        })
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &str) -> String {
        format!(
            "{{\n  \"schema\": \"threshold-table/v1\",\n  \"delta_rule\": \"n/3\",\n  \"rows\": [\n{rows}\n  ]\n}}\n"
        )
    }

    fn row(n: u64, lo: f64, hi: f64) -> String {
        format!(
            "    {{\"n\": {n}, \"method\": \"exact\", \"beta_lo\": {lo}, \"beta_hi\": {hi}, \"p_lo\": 0.25, \"p_hi\": 0.25}}"
        )
    }

    #[test]
    fn accepts_a_well_formed_table() {
        let text = doc(&format!(
            "{},\n{}",
            row(2, 0.444, 0.444),
            row(3, 0.622, 0.622)
        ));
        let rows = validate_table_document(&text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].n, 3);
        assert_eq!(rows[0].method, "exact");
    }

    #[test]
    fn rejects_schema_rule_and_shape_problems() {
        assert!(validate_table_document("{}").is_err());
        let bad_schema = doc(&row(2, 0.4, 0.4)).replace("threshold-table/v1", "threshold-table/v0");
        assert!(validate_table_document(&bad_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_rule = doc(&row(2, 0.4, 0.4)).replace("n/3", "n/2");
        assert!(validate_table_document(&bad_rule)
            .unwrap_err()
            .contains("delta_rule"));
        let empty = doc("").replace("[\n\n  ]", "[]");
        assert!(validate_table_document(&empty).is_err());
    }

    #[test]
    fn rejects_gapped_inverted_wide_and_boundary_rows() {
        let gapped = doc(&format!("{},\n{}", row(2, 0.4, 0.4), row(4, 0.6, 0.6)));
        assert!(validate_table_document(&gapped)
            .unwrap_err()
            .contains("contiguous"));
        let inverted = doc(&row(2, 0.5, 0.4));
        assert!(validate_table_document(&inverted)
            .unwrap_err()
            .contains("inverted"));
        let wide = doc(&row(2, 0.4, 0.41));
        assert!(validate_table_document(&wide)
            .unwrap_err()
            .contains("width"));
        let at_zero = doc(&row(2, 0.0, 0.0));
        assert!(validate_table_document(&at_zero)
            .unwrap_err()
            .contains("unit interval"));
        let bad_method = doc(&row(2, 0.4, 0.4)).replace("exact", "guessed");
        assert!(validate_table_document(&bad_method)
            .unwrap_err()
            .contains("method"));
    }

    #[test]
    fn spot_indices_cover_both_ends() {
        assert_eq!(spot_indices(127, 5), vec![0, 31, 63, 94, 126]);
        assert_eq!(spot_indices(3, 5), vec![0, 1, 2]);
        assert_eq!(spot_indices(1, 5), vec![0]);
        assert!(spot_indices(0, 5).is_empty());
    }
}
