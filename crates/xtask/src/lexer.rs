//! A dependency-free Rust lexer: the token-level foundation of the
//! `cargo xtask analyze` passes.
//!
//! The lexer replaces the line-oriented scrubbed-text scanner (kept in
//! [`crate::scrub`] as a differential-testing oracle) with a proper
//! token stream. Every token records its byte range and 1-based line
//! in the *original* source, so passes report exact locations and the
//! stream round-trips: concatenating token texts with the whitespace
//! between them reproduces the input byte for byte (property-tested).
//!
//! Comments — including doc comments — are tokens too, so passes that
//! need prose (inline `xtask:allow` waivers, `# Panics` sections) read
//! it from the same stream the code-level passes filter out. String
//! and char literal *contents* are opaque: a `panic!(` inside a string
//! is one `Str` token, invisible to any pass matching identifiers.

/// Doc-comment flavour of a comment token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Doc {
    /// A plain comment (`//`, `/* */`).
    None,
    /// An outer doc comment (`///`, `/** */`) — attaches to the next
    /// item.
    Outer,
    /// An inner doc comment (`//!`, `/*! */`) — documents the
    /// enclosing module or crate.
    Inner,
}

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `seed`, `r#async`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.5`, `1e-9`, `2.5f64`).
    Float,
    /// A string or byte-string literal (`"…"`, `b"…"`).
    Str,
    /// A raw string or raw byte-string literal (`r"…"`, `br#"…"#`).
    RawStr,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A `//`-style comment, with its doc flavour.
    LineComment(Doc),
    /// A `/* */`-style comment (possibly nested), with its doc
    /// flavour.
    BlockComment(Doc),
    /// A single punctuation byte (`{`, `.`, `!`, …).
    Punct(u8),
    /// A byte the lexer does not classify (kept so the stream still
    /// round-trips).
    Unknown,
}

/// One token: a classified byte range of the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the range is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text in `source` (the string it was lexed from).
    #[must_use]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// `true` for comment tokens of any flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_)
        )
    }

    /// `true` when the token is exactly the punctuation byte `b`.
    #[must_use]
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokenKind::Punct(b)
    }
}

/// Lexes `source` into a complete token stream.
///
/// Invariants (property-tested in `tests/lexer_proptests.rs`):
/// tokens are in order, non-overlapping, and within bounds; the gaps
/// between consecutive tokens contain only whitespace; every token's
/// `line` equals `1 +` the number of `\n` bytes before `start`.
#[must_use]
#[allow(clippy::too_many_lines)] // one match arm per lexical class; splitting hurts readability
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace: skipped, but line-counted.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        let next = bytes.get(i + 1).copied();
        let kind = match b {
            b'/' if next == Some(b'/') => {
                let doc = match bytes.get(i + 2) {
                    Some(b'/') if bytes.get(i + 3) != Some(&b'/') => Doc::Outer,
                    Some(b'!') => Doc::Inner,
                    _ => Doc::None,
                };
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokenKind::LineComment(doc)
            }
            b'/' if next == Some(b'*') => {
                let doc = match bytes.get(i + 2) {
                    Some(b'*')
                        if bytes.get(i + 3) != Some(&b'*') && bytes.get(i + 3) != Some(&b'/') =>
                    {
                        Doc::Outer
                    }
                    Some(b'!') => Doc::Inner,
                    _ => Doc::None,
                };
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                TokenKind::BlockComment(doc)
            }
            b'"' => {
                i = scan_string(bytes, i + 1, &mut line);
                TokenKind::Str
            }
            b'b' | b'r' if string_prefix_len(bytes, i).is_some() => {
                // b"…", r"…", r#"…"#, br#"…"#, b'…'
                let (prefix, raw, is_char) =
                    string_prefix_len(bytes, i).unwrap_or((1, false, false)); // xtask:allow(no-panic): guarded by the match arm condition
                i += prefix;
                if is_char {
                    i = scan_char(bytes, i).unwrap_or(i);
                    TokenKind::Char
                } else if raw {
                    #[allow(clippy::naive_bytecount)] // prefix is at most a few bytes long
                    let hashes = bytes[start..i - 1].iter().filter(|&&h| h == b'#').count();
                    i = scan_raw_string(bytes, i, hashes, &mut line);
                    TokenKind::RawStr
                } else {
                    i = scan_string(bytes, i, &mut line);
                    TokenKind::Str
                }
            }
            b'\'' => {
                // Char literal or lifetime: a lifetime has no closing
                // quote straight after its identifier.
                if let Some(end) = scan_char(bytes, i + 1) {
                    i = end;
                    TokenKind::Char
                } else {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                }
            }
            _ if b.is_ascii_digit() => {
                let (end, float) = scan_number(bytes, i);
                i = end;
                if float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                }
            }
            _ if is_ident_start(b) => {
                // `r#ident` raw identifiers are caught here only when
                // the `r#` did not start a raw string (checked above).
                i += 1;
                if b == b'r'
                    && bytes.get(i) == Some(&b'#')
                    && bytes.get(i + 1).copied().is_some_and(is_ident_byte)
                {
                    i += 1;
                }
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_punctuation() => {
                i += 1;
                TokenKind::Punct(b)
            }
            _ => {
                // Multibyte (non-ASCII) or control byte outside any
                // literal: advance one UTF-8 scalar so the stream
                // still covers every byte.
                i += utf8_len(b);
                TokenKind::Unknown
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// Recognizes a string/char prefix starting at `i`: returns
/// `(prefix_len_to_opening_quote, is_raw, is_char)`; `None` when the
/// bytes at `i` do not start a prefixed literal.
fn string_prefix_len(bytes: &[u8], i: usize) -> Option<(usize, bool, bool)> {
    // A prefix is only a prefix when not glued to a preceding
    // identifier (e.g. the `r` of `for` or the `b` of `grab`).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return Some((j + 1 - i, false, true)); // b'…'
        }
        if bytes.get(j) == Some(&b'"') {
            return Some((j + 1 - i, false, false)); // b"…"
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            return Some((j + 1 - i, true, false)); // [b]r#*"…"#*
        }
        let _ = hashes;
    }
    None
}

/// Scans past an ordinary (escaped) string body whose opening quote
/// is just before `i`; returns the index one past the closing quote.
fn scan_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i.min(bytes.len())
}

/// Scans past a raw-string body expecting `hashes` closing `#`s;
/// returns the index one past the final `#` (or `"` when zero).
fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// If a char-literal body starts at `i` (just past the opening `'`),
/// returns the index one past the closing quote; `None` when the
/// quote actually started a lifetime.
fn scan_char(bytes: &[u8], i: usize) -> Option<usize> {
    if bytes.get(i) == Some(&b'\\') {
        // Escaped char: skip the backslash and escape head, then scan
        // to the closing quote (covers `\u{…}` forms).
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then(|| j + 1);
    }
    // Unescaped: exactly one char (up to 4 UTF-8 bytes) then a quote.
    let j = i + utf8_len(*bytes.get(i)?);
    (bytes.get(j) == Some(&b'\'') && bytes.get(i) != Some(&b'\'')).then(|| j + 1)
}

/// Scans a numeric literal starting at `i`; returns `(end, is_float)`.
fn scan_number(bytes: &[u8], mut i: usize) -> (usize, bool) {
    let mut float = false;
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b')) {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // A fractional part — but not `1..2` (range) or `1.method()`.
    if bytes.get(i) == Some(&b'.')
        && bytes
            .get(i + 1)
            .copied()
            .is_some_and(|d| d.is_ascii_digit())
    {
        float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // An exponent (`e9`, `E-4`, `e+2`) makes it a float.
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if bytes.get(j).copied().is_some_and(|d| d.is_ascii_digit()) {
            float = true;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // A type suffix (`u64`, `f64`) glues onto the literal.
    if bytes.get(i).copied().is_some_and(is_ident_start) {
        if bytes[i] == b'f' {
            float = true;
        }
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
    }
    (i, float)
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 scalar starting with `b` (1 for
/// continuation/invalid bytes, so progress is always made).
fn utf8_len(b: u8) -> usize {
    match b {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_owned()).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("fn f(x: u64) -> f64 { x as f64 * 1.5e-9 }"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct(b'('),
                TokenKind::Ident,
                TokenKind::Punct(b':'),
                TokenKind::Ident,
                TokenKind::Punct(b')'),
                TokenKind::Punct(b'-'),
                TokenKind::Punct(b'>'),
                TokenKind::Ident,
                TokenKind::Punct(b'{'),
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct(b'*'),
                TokenKind::Float,
                TokenKind::Punct(b'}'),
            ]
        );
    }

    #[test]
    fn panic_inside_string_is_one_opaque_token() {
        let src = "let m = \"do not panic!(now)\";";
        let toks = lex(src);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokenKind::Ident || t.text(src) != "panic"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings_are_opaque() {
        for src in [
            "let m = r#\"unwrap() here\"#;",
            "let m = r\"unwrap()\";",
            "let m = b\"unwrap()\";",
            "let m = br#\"unwrap() too\"#;",
        ] {
            let toks = lex(src);
            assert!(
                toks.iter()
                    .all(|t| t.kind != TokenKind::Ident || t.text(src) != "unwrap"),
                "{src}"
            );
        }
    }

    #[test]
    fn raw_string_with_inner_hash_quote_ends_at_matching_hashes() {
        let src = "let m = r##\"contains \"# inside\"##; next()";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "next"));
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn wide_char_literals_are_chars_not_lifetimes() {
        // A 4-byte scalar between quotes is still a char literal.
        let src = "let c = '\u{1F600}'; let l: &'static str = \"\";";
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            1
        );
    }

    #[test]
    fn byte_char_literals_lex_as_chars() {
        let src = "let b = b'\\n'; let q = b'x';";
        assert_eq!(
            lex(src)
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* outer /* inner */ still */ let y = 2;";
        let toks = lex(src);
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::BlockComment(_)))
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "let"));
    }

    #[test]
    fn doc_comment_flavours() {
        let src = "/// outer\n//! inner\n// plain\n//// not doc\n";
        let toks = lex(src);
        assert_eq!(
            toks.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![
                TokenKind::LineComment(Doc::Outer),
                TokenKind::LineComment(Doc::Inner),
                TokenKind::LineComment(Doc::None),
                TokenKind::LineComment(Doc::None),
            ]
        );
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let src = "a\n/* b\nc */\nd \"e\nf\"\ng";
        let toks = lex(src);
        let g = toks.last().unwrap();
        assert_eq!(g.text(src), "g");
        assert_eq!(g.line, 6);
    }

    #[test]
    fn for_keyword_r_is_not_a_raw_string() {
        let src = "for x in 0..n { r#\"raw\"#; }";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "for"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::RawStr).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let src = "let r#async = 1;";
        assert!(texts(src).contains(&"r#async".to_owned()));
    }

    #[test]
    fn number_shapes() {
        assert_eq!(kinds("0xff_u64"), vec![TokenKind::Int]);
        assert_eq!(kinds("1_000"), vec![TokenKind::Int]);
        assert_eq!(kinds("1e-9"), vec![TokenKind::Float]);
        assert_eq!(kinds("5.0E-4"), vec![TokenKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float]);
        // `1..2` is Int, Punct('.'), Punct('.'), Int — not a float.
        assert_eq!(
            kinds("1..2"),
            vec![
                TokenKind::Int,
                TokenKind::Punct(b'.'),
                TokenKind::Punct(b'.'),
                TokenKind::Int
            ]
        );
    }

    #[test]
    fn stream_round_trips_with_whitespace_gaps() {
        let src = "fn f() {\n    let s = \"x\\\"y\";\n    // note\n    s.len()\n}\n";
        let toks = lex(src);
        let mut cursor = 0usize;
        for t in &toks {
            assert!(src[cursor..t.start]
                .bytes()
                .all(|b| b.is_ascii_whitespace()));
            assert_eq!(t.line, 1 + src[..t.start].matches('\n').count());
            cursor = t.end;
        }
        assert!(src[cursor..].bytes().all(|b| b.is_ascii_whitespace()));
    }
}
