//! The lint rules.
//!
//! Every rule is a pure function from a [`SourceFile`] to a list of
//! [`Violation`]s; the driver composes them over the workspace and
//! subtracts the allowlist. Rules are line-oriented over *scrubbed*
//! text (comments and string contents blanked), which keeps them
//! dependency-free while immune to prose false-positives.

use crate::source::{FileKind, SourceFile};

/// One finding: a rule, a place, and what was seen there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable lint identifier (e.g. `no-panic`).
    pub lint: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented description of the finding.
    pub message: String,
}

/// Descriptor for one rule, used by `--list` and the tests.
pub struct Lint {
    /// Stable identifier, as used in allowlists.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The rule itself.
    pub check: fn(&SourceFile) -> Vec<Violation>,
}

/// Every rule the driver knows, in reporting order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "no-panic",
        summary: "forbid unwrap/expect/panic! and friends in library code",
        check: no_panic,
    },
    Lint {
        id: "no-unseeded-rng",
        summary: "forbid ambient-entropy RNG constructors everywhere",
        check: no_unseeded_rng,
    },
    Lint {
        id: "no-print",
        summary: "forbid println!/eprintln!/dbg! in library code",
        check: no_print,
    },
    Lint {
        id: "panics-doc",
        summary: "require a # Panics doc section on pub fns that can panic",
        check: panics_doc,
    },
    Lint {
        id: "float-tolerance",
        summary: "flag bare float tolerance literals outside named constants",
        check: float_tolerance,
    },
    Lint {
        id: "unsafe-header",
        summary: "require #![forbid(unsafe_code)] at every crate root",
        check: unsafe_header,
    },
    Lint {
        id: "no-twin-f64",
        summary: "forbid new *_f64 free functions outside waived wrapper sites",
        check: no_twin_float,
    },
    Lint {
        id: "no-dyn-hot-loop",
        summary: "forbid dyn LocalRule dispatch inside batch/kernel hot-path fns",
        check: no_dyn_hot_loop,
    },
    Lint {
        id: "no-silent-send",
        summary: "forbid discarding channel send results with `let _ =` in library code",
        check: no_silent_send,
    },
];

/// Runs every rule over one file.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for lint in LINTS {
        out.extend((lint.check)(file));
    }
    out
}

/// Tokens that abort the process (or can), forbidden in library code.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn no_panic(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    scan_tokens(file, "no-panic", PANIC_TOKENS, true)
}

/// Entropy-seeded constructors: banned in *all* code, tests included —
/// reproducibility is a workspace-wide guarantee.
const RNG_TOKENS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "rand::random"];

fn no_unseeded_rng(file: &SourceFile) -> Vec<Violation> {
    scan_tokens(file, "no-unseeded-rng", RNG_TOKENS, false)
}

const PRINT_TOKENS: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!(", "dbg!("];

fn no_print(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    scan_tokens(file, "no-print", PRINT_TOKENS, true)
}

/// Flags occurrences of any of `tokens`; test regions are skipped when
/// `skip_tests` is set.
fn scan_tokens(
    file: &SourceFile,
    lint: &'static str,
    tokens: &[&str],
    skip_tests: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if (skip_tests && file.is_test_line(lineno)) || file.allowed(lint, lineno) {
            continue;
        }
        for token in tokens {
            if contains_token(line, token) {
                out.push(Violation {
                    lint,
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`{}` is forbidden here", token.trim_end_matches('(')),
                });
            }
        }
    }
    out
}

/// `true` when `line` contains `token` at an identifier boundary, so
/// `eprintln!(` does not count as `println!(` and `debug_assert!(`
/// does not count as `assert!(`.
fn contains_token(line: &str, token: &str) -> bool {
    let needs_boundary = token
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut haystack = line;
    let mut offset = 0usize;
    while let Some(pos) = haystack.find(token) {
        let abs = offset + pos;
        let boundary = !needs_boundary || abs == 0 || {
            let prev = line.as_bytes()[abs - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_')
        };
        if boundary {
            return true;
        }
        offset = abs + 1;
        haystack = &line[offset..];
    }
    false
}

/// Tokens that make a function able to panic; `debug_assert!` and the
/// contracts macros are deliberately absent (debug-only by default).
const BODY_PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

fn panics_doc(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim_start();
        let is_pub_fn = trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub const fn ")
            || trimmed.starts_with("pub async fn ");
        if !is_pub_fn || file.is_test_line(lineno) || file.allowed("panics-doc", lineno) {
            continue;
        }
        let Some((body_start, body_end)) = body_extent(&file.lines, idx) else {
            continue; // trait method declaration or parse oddity
        };
        let can_panic = (body_start..body_end).any(|b| {
            let l = &file.lines[b];
            BODY_PANIC_TOKENS.iter().any(|t| contains_token(l, t))
                && !file.allowed("no-panic", b + 1)
        });
        if can_panic && !doc_has_panics_section(file, idx) {
            out.push(Violation {
                lint: "panics-doc",
                path: file.path.clone(),
                line: lineno,
                message: "pub fn can panic but its docs have no `# Panics` section".to_owned(),
            });
        }
    }
    out
}

/// Finds the `{`-to-`}` extent (0-based line range, exclusive end) of
/// the fn whose signature starts at line `sig`; `None` for braceless
/// declarations.
fn body_extent(lines: &[String], sig: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut started = false;
    for (idx, line) in lines.iter().enumerate().skip(sig) {
        for b in line.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    started = true;
                }
                b'}' => depth -= 1,
                b';' if !started && depth == 0 => return None,
                _ => {}
            }
        }
        if started && depth <= 0 {
            return Some((sig, idx + 1));
        }
        if idx > sig + 400 {
            break; // runaway guard: unbalanced braces
        }
    }
    None
}

/// `true` when the doc block directly above line `sig` (0-based)
/// contains a `# Panics` heading.
fn doc_has_panics_section(file: &SourceFile, sig: usize) -> bool {
    let mut idx = sig;
    while idx > 0 {
        idx -= 1;
        let comment = &file.scrubbed.comments[idx];
        let code = file.lines[idx].trim();
        // The attached doc block: pure comment lines and attributes.
        // Blank lines, code lines, and module docs (`//!`) end it.
        let crossable = (code.is_empty() && !comment.is_empty() && !comment.starts_with("//!"))
            || code.starts_with("#[");
        if !crossable {
            return false;
        }
        if comment.contains("# Panics") {
            return true;
        }
    }
    false
}

fn float_tolerance(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno)
            || file.in_tolerances[idx]
            || file.allowed("float-tolerance", lineno)
            || file.path.ends_with("tolerances.rs")
        {
            continue;
        }
        // A `const` definition *is* a named tolerance.
        let trimmed = line.trim_start();
        if trimmed.starts_with("const ") || trimmed.starts_with("pub const ") {
            continue;
        }
        if let Some(col) = find_negative_exponent_literal(line) {
            out.push(Violation {
                lint: "float-tolerance",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "bare tolerance literal `{}` — name it in a `mod tolerances` or `const`",
                    literal_at(line, col)
                ),
            });
        }
    }
    out
}

/// Finds a float literal with a negative exponent (`1e-9`, `5.0E-4`)
/// and returns the column of its mantissa start.
fn find_negative_exponent_literal(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    for i in 0..bytes.len() {
        if (bytes[i] == b'e' || bytes[i] == b'E')
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1) == Some(&b'-')
            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            let mut start = i - 1;
            while start > 0 && (bytes[start - 1].is_ascii_digit() || bytes[start - 1] == b'.') {
                start -= 1;
            }
            return Some(start);
        }
    }
    None
}

/// Extracts the literal starting at `col` for the report message.
fn literal_at(line: &str, col: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = col;
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'.' || bytes[end] == b'-')
    {
        end += 1;
    }
    &line[col..end]
}

/// The analytic core is written once, generically over `Scalar`; a
/// `*_f64` free function is almost always a hand-maintained twin of
/// an exact implementation. Only thin instantiation wrappers over a
/// generic `_in` core are legitimate, and each carries an explicit
/// `xtask:allow(no-twin-f64)` waiver. Methods (indented inside an
/// `impl`) such as `to_f64` conversions are not flagged.
fn no_twin_float(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) || file.allowed("no-twin-f64", lineno) {
            continue;
        }
        // Free functions only: a column-0 `fn` item. Methods live
        // indented inside an `impl` block and are exempt.
        let Some(rest) = line
            .strip_prefix("pub fn ")
            .or_else(|| line.strip_prefix("pub(crate) fn "))
            .or_else(|| line.strip_prefix("fn "))
        else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.ends_with("_f64") {
            out.push(Violation {
                lint: "no-twin-f64",
                path: file.path.clone(),
                line: lineno,
                message: format!(
                    "free function `{name}` twins the float pipeline — implement the math \
                     once in a generic `_in` core and keep only a waived thin wrapper"
                ),
            });
        }
    }
    out
}

/// The simulator's trial loops are monomorphized so the per-player
/// decision inlines; a `Box<dyn LocalRule>` or `&dyn LocalRule`
/// inside a batch/kernel function reintroduces a virtual call per
/// decision and silently undoes that. Hot-path functions are
/// recognized by name (`batch` or `kernel` in the identifier — the
/// engine's naming convention); a deliberate dynamic baseline carries
/// an `xtask:allow(no-dyn-hot-loop)` waiver.
fn no_dyn_hot_loop(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(name) = fn_item_name(line) else {
            continue;
        };
        if !(name.contains("batch") || name.contains("kernel")) {
            continue;
        }
        let Some((body_start, body_end)) = body_extent(&file.lines, idx) else {
            continue; // trait method declaration or parse oddity
        };
        for body_idx in body_start..body_end {
            let lineno = body_idx + 1;
            if file.is_test_line(lineno) || file.allowed("no-dyn-hot-loop", lineno) {
                continue;
            }
            if contains_token(&file.lines[body_idx], "dyn LocalRule") {
                out.push(Violation {
                    lint: "no-dyn-hot-loop",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "`dyn LocalRule` inside hot-path fn `{name}` — monomorphize over \
                         `R: LocalRule` (or waive a deliberate dynamic baseline)"
                    ),
                });
            }
        }
    }
    out
}

/// The identifier of the fn item whose signature starts on `line`,
/// if any (visibility and `const`/`async` qualifiers allowed).
fn fn_item_name(line: &str) -> Option<String> {
    let mut rest = line.trim_start();
    for prefix in ["pub(crate) ", "pub(super) ", "pub ", "const ", "async "] {
        if let Some(stripped) = rest.strip_prefix(prefix) {
            rest = stripped;
        }
    }
    let rest = rest.strip_prefix("fn ")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `let _ = tx.send(…)` discards delivery failure: if the receiver is
/// gone the payload is silently lost, turning a dead worker or a
/// shutdown race into unexplained data loss. Library code must either
/// propagate the `SendError` (as the pool's `submit` does with
/// `SimulationError::PoolClosed`), branch on it, or shut a channel
/// down by *dropping* the sender — never by throwing the result away.
/// `try_send` is not matched (its result carries a would-block case
/// that some callers legitimately drop); a deliberate drop carries an
/// `xtask:allow(no-silent-send)` waiver.
fn no_silent_send(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) || file.allowed("no-silent-send", lineno) {
            continue;
        }
        if line.trim_start().starts_with("let _ =") && contains_token(line, "send(") {
            out.push(Violation {
                lint: "no-silent-send",
                path: file.path.clone(),
                line: lineno,
                message: "`let _ = …send(…)` silently drops a failed delivery — propagate \
                          or branch on the `SendError` (or drop the sender to close)"
                    .to_owned(),
            });
        }
    }
    out
}

fn unsafe_header(file: &SourceFile) -> Vec<Violation> {
    if !file.path.ends_with("src/lib.rs") {
        return Vec::new();
    }
    let has_header = file
        .lines
        .iter()
        .any(|l| l.trim() == "#![forbid(unsafe_code)]");
    if has_header || file.allowed("unsafe-header", 1) {
        return Vec::new();
    }
    vec![Violation {
        lint: "unsafe-header",
        path: file.path.clone(),
        line: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", FileKind::Lib, src)
    }

    #[test]
    fn unwrap_in_lib_code_fires() {
        let f = lib("#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let v = no_panic(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn inline_allow_silences_no_panic() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f() { g().expect(\"x\"); // xtask:allow(no-panic): invariant upheld by caller\n}\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn rng_lint_applies_even_in_tests() {
        let f = SourceFile::parse(
            "crates/x/tests/t.rs",
            FileKind::TestLike,
            "fn t() { let mut r = rand::thread_rng(); }\n",
        );
        assert_eq!(no_unseeded_rng(&f).len(), 1);
    }

    #[test]
    fn print_in_bin_is_exempt() {
        let f = SourceFile::parse(
            "src/bin/cli.rs",
            FileKind::Bin,
            "fn main() { println!(\"hi\"); }\n",
        );
        assert!(no_print(&f).is_empty());
    }

    #[test]
    fn undocumented_panicking_pub_fn_fires() {
        let f = lib("#![forbid(unsafe_code)]\n/// Does things.\npub fn f(x: u8) {\n    assert!(x > 0);\n}\n");
        assert_eq!(panics_doc(&f).len(), 1);
    }

    #[test]
    fn documented_panicking_pub_fn_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\n/// Does things.\n///\n/// # Panics\n///\n/// Panics if `x` is zero.\npub fn f(x: u8) {\n    assert!(x > 0);\n}\n",
        );
        assert!(panics_doc(&f).is_empty());
    }

    #[test]
    fn bare_exponent_literal_fires_and_const_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\nconst EPS: f64 = 1e-9;\nfn f(x: f64) -> bool { x < 1e-9 }\n",
        );
        let v = float_tolerance(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn missing_unsafe_header_fires_only_for_lib_rs() {
        let f = lib("fn f() {}\n");
        assert_eq!(unsafe_header(&f).len(), 1);
        let g = SourceFile::parse("crates/x/src/other.rs", FileKind::Lib, "fn f() {}\n");
        assert!(unsafe_header(&g).is_empty());
    }

    #[test]
    fn unwaived_f64_free_function_fires() {
        let f = lib("#![forbid(unsafe_code)]\npub fn cdf_f64(t: f64) -> f64 {\n    t\n}\n");
        let v = no_twin_float(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn waived_f64_wrapper_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\npub fn cdf_f64(t: f64) -> f64 { // xtask:allow(no-twin-f64): instantiation wrapper\n    cdf_in(&t)\n}\n",
        );
        assert!(no_twin_float(&f).is_empty());
    }

    #[test]
    fn f64_methods_and_test_helpers_are_exempt() {
        // A method is indented inside its impl block; a test helper
        // sits in a #[cfg(test)] region. Neither is a twin pipeline.
        let f = lib(
            "#![forbid(unsafe_code)]\nimpl X {\n    pub fn to_f64(&self) -> f64 { 0.0 }\n}\n#[cfg(test)]\nmod tests {\n    fn probe_f64() -> f64 { 0.0 }\n}\n",
        );
        assert!(no_twin_float(&f).is_empty());
    }

    #[test]
    fn dyn_rule_in_batch_fn_fires() {
        let f =
            lib("#![forbid(unsafe_code)]\nfn run_batch(rule: &dyn LocalRule) -> u64 {\n    0\n}\n");
        let v = no_dyn_hot_loop(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dyn_rule_outside_hot_path_fns_is_exempt() {
        let f = lib("#![forbid(unsafe_code)]\nfn run(rule: &dyn LocalRule) -> u64 {\n    0\n}\n");
        assert!(no_dyn_hot_loop(&f).is_empty());
    }

    #[test]
    fn waived_dyn_baseline_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn kernel_baseline(\n    rule: &dyn LocalRule, // xtask:allow(no-dyn-hot-loop): deliberate dispatch baseline\n) -> u64 {\n    0\n}\n",
        );
        assert!(no_dyn_hot_loop(&f).is_empty());
    }

    #[test]
    fn silent_send_fires_in_lib_code() {
        let f = lib("#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    let _ = tx.send(1);\n}\n");
        let v = no_silent_send(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn handled_sends_and_try_send_are_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    if tx.send(1).is_err() {\n        return;\n    }\n    let _ = tx.try_send(2);\n}\n",
        );
        assert!(no_silent_send(&f).is_empty());
    }

    #[test]
    fn silent_send_in_tests_and_waived_sites_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    let _ = tx.send(1); // xtask:allow(no-silent-send): receiver outlives us by construction\n}\n#[cfg(test)]\nmod tests {\n    fn t(tx: Tx) { let _ = tx.send(1); }\n}\n",
        );
        assert!(no_silent_send(&f).is_empty());
    }

    #[test]
    fn panic_token_inside_string_is_invisible() {
        let f = lib("#![forbid(unsafe_code)]\nfn f() -> &'static str { \"do not panic!(now)\" }\n");
        assert!(no_panic(&f).is_empty());
    }
}
