//! The nine lint rules, migrated from the line-regex scanner onto the
//! token stream and item tree.
//!
//! Every rule is a pure function from a [`SourceFile`] to a list of
//! [`Violation`]s; the driver composes them over the workspace and
//! subtracts the allowlist. Rules walk the non-comment token stream
//! (so string and comment contents are invisible by construction) and
//! consult the item tree for scope — which fn a token is in, whether
//! an item is `#[cfg(test)]`-only, whether a fn is free or a method —
//! instead of guessing from indentation.

use crate::source::{FileKind, SourceFile};
use crate::tree::ItemKind;

/// One finding: a check, a place, and what was seen there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable check identifier (e.g. `no-panic`).
    pub lint: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-oriented description of the finding.
    pub message: String,
}

/// Descriptor for one rule, used by `--list` and the tests.
pub struct Lint {
    /// Stable identifier, as used in allowlists.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The rule itself.
    pub check: fn(&SourceFile) -> Vec<Violation>,
}

/// Every lint rule the driver knows, in reporting order. The four
/// scope-aware analyses live in [`crate::analyses::ANALYSES`].
pub const LINTS: &[Lint] = &[
    Lint {
        id: "no-panic",
        summary: "forbid unwrap/expect/panic! and friends in library code",
        check: no_panic,
    },
    Lint {
        id: "no-unseeded-rng",
        summary: "forbid ambient-entropy RNG constructors everywhere",
        check: no_unseeded_rng,
    },
    Lint {
        id: "no-print",
        summary: "forbid println!/eprintln!/dbg! in library code",
        check: no_print,
    },
    Lint {
        id: "panics-doc",
        summary: "require a # Panics doc section on pub fns that can panic",
        check: panics_doc,
    },
    Lint {
        id: "float-tolerance",
        summary: "flag bare float tolerance literals outside named constants",
        check: float_tolerance,
    },
    Lint {
        id: "unsafe-header",
        summary: "require #![forbid(unsafe_code)] at every crate root",
        check: unsafe_header,
    },
    Lint {
        id: "no-twin-f64",
        summary: "forbid new *_f64/*_ball free functions outside waived wrapper sites",
        check: no_twin_float,
    },
    Lint {
        id: "no-dyn-hot-loop",
        summary: "forbid dyn LocalRule dispatch inside batch/kernel hot-path fns",
        check: no_dyn_hot_loop,
    },
    Lint {
        id: "no-silent-send",
        summary: "forbid discarding channel send results with `let _ =` in library code",
        check: no_silent_send,
    },
];

/// Runs every lint rule over one file.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for lint in LINTS {
        out.extend((lint.check)(file));
    }
    out
}

/// Method names that abort the process when called after a `.`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macro names that abort the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `true` when code token `k` (an index into `file.code`) is a
/// `.name(` method call with `name` in `names`.
pub(crate) fn is_panic_method(file: &SourceFile, k: usize, names: &[&str]) -> bool {
    let code = &file.code;
    let i = code[k];
    if !names.contains(&file.tok(i)) {
        return false;
    }
    let prev_dot = k > 0 && file.tokens[code[k - 1]].is_punct(b'.');
    let next_paren = code
        .get(k + 1)
        .is_some_and(|&j| file.tokens[j].is_punct(b'('));
    prev_dot && next_paren
}

/// `true` when code token `k` is a `name!` macro invocation with
/// `name` in `names`.
pub(crate) fn is_macro_call(file: &SourceFile, k: usize, names: &[&str]) -> bool {
    let code = &file.code;
    let i = code[k];
    names.contains(&file.tok(i))
        && code
            .get(k + 1)
            .is_some_and(|&j| file.tokens[j].is_punct(b'!'))
}

/// Scans the whole code stream for panic-style calls, subject to the
/// usual skip rules.
fn no_panic(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..file.code.len() {
        let line = file.tokens[file.code[k]].line;
        if file.is_test_line(line) || file.allowed("no-panic", line) {
            continue;
        }
        let name = file.tok(file.code[k]);
        if is_panic_method(file, k, PANIC_METHODS) {
            out.push(Violation {
                lint: "no-panic",
                path: file.path.clone(),
                line,
                message: format!("`.{name}()` is forbidden here"),
            });
        } else if is_macro_call(file, k, PANIC_MACROS) {
            out.push(Violation {
                lint: "no-panic",
                path: file.path.clone(),
                line,
                message: format!("`{name}!` is forbidden here"),
            });
        }
    }
    out
}

/// Entropy-seeded constructors: banned in *all* code, tests included —
/// reproducibility is a workspace-wide guarantee.
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

fn no_unseeded_rng(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for k in 0..file.code.len() {
        let i = file.code[k];
        let line = file.tokens[i].line;
        if file.allowed("no-unseeded-rng", line) {
            continue;
        }
        let text = file.tok(i);
        let ambient = RNG_IDENTS.contains(&text)
            || (text == "rand"
                && file
                    .code
                    .get(k + 1)
                    .zip(file.code.get(k + 2))
                    .zip(file.code.get(k + 3))
                    .is_some_and(|((&c1, &c2), &c3)| {
                        file.tokens[c1].is_punct(b':')
                            && file.tokens[c2].is_punct(b':')
                            && file.tok(c3) == "random"
                    }));
        if ambient {
            out.push(Violation {
                lint: "no-unseeded-rng",
                path: file.path.clone(),
                line,
                message: format!("`{text}` is forbidden here"),
            });
        }
    }
    out
}

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn no_print(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for k in 0..file.code.len() {
        let line = file.tokens[file.code[k]].line;
        if file.is_test_line(line) || file.allowed("no-print", line) {
            continue;
        }
        if is_macro_call(file, k, PRINT_MACROS) {
            out.push(Violation {
                lint: "no-print",
                path: file.path.clone(),
                line,
                message: format!("`{}!` is forbidden here", file.tok(file.code[k])),
            });
        }
    }
    out
}

/// Macro names that make a function able to panic on top of the
/// always-banned set; `debug_assert!` and the contracts macros are
/// deliberately absent (debug-only by default).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

fn panics_doc(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.tree.functions() {
        let item = f.item;
        if !item.vis_pub
            || item.test
            || file.is_test_line(item.line)
            || file.allowed("panics-doc", item.line)
        {
            continue;
        }
        let Some((body_start, body_end)) = item.body else {
            continue; // trait method declaration
        };
        let can_panic = file
            .code
            .iter()
            .enumerate()
            .filter(|&(_, &i)| i >= body_start && i < body_end)
            .any(|(k, &i)| {
                let line = file.tokens[i].line;
                (is_panic_method(file, k, PANIC_METHODS)
                    || is_macro_call(file, k, PANIC_MACROS)
                    || is_macro_call(file, k, ASSERT_MACROS))
                    && !file.allowed("no-panic", line)
            });
        if can_panic && !item.doc.contains("# Panics") {
            out.push(Violation {
                lint: "panics-doc",
                path: file.path.clone(),
                line: item.line,
                message: "pub fn can panic but its docs have no `# Panics` section".to_owned(),
            });
        }
    }
    out
}

fn float_tolerance(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &i in &file.code {
        let t = &file.tokens[i];
        if t.kind != crate::lexer::TokenKind::Float {
            continue;
        }
        let text = t.text(&file.text);
        if !(text.contains("e-") || text.contains("E-")) {
            continue;
        }
        let line = t.line;
        if file.is_test_line(line)
            || file.in_tolerances.get(line - 1).copied().unwrap_or(false)
            || file.allowed("float-tolerance", line)
            || file.path.ends_with("tolerances.rs")
        {
            continue;
        }
        // A `const` definition *is* a named tolerance.
        let trimmed = file.lines[line - 1].trim_start();
        if trimmed.starts_with("const ") || trimmed.starts_with("pub const ") {
            continue;
        }
        out.push(Violation {
            lint: "float-tolerance",
            path: file.path.clone(),
            line,
            message: format!(
                "bare tolerance literal `{text}` — name it in a `mod tolerances` or `const`"
            ),
        });
    }
    out
}

fn unsafe_header(file: &SourceFile) -> Vec<Violation> {
    if !file.path.ends_with("src/lib.rs") {
        return Vec::new();
    }
    // `#` `!` `[` `forbid` `(` `unsafe_code` `)` `]` in the code
    // stream.
    let want: &[&str] = &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let has_header = file.code.windows(want.len()).any(|w| {
        w.iter()
            .zip(want.iter())
            .all(|(&i, &expect)| file.tok(i) == expect)
    });
    if has_header || file.allowed("unsafe-header", 1) {
        return Vec::new();
    }
    vec![Violation {
        lint: "unsafe-header",
        path: file.path.clone(),
        line: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
    }]
}

/// The analytic core is written once, generically over `Scalar`; a
/// `*_f64` (or `*_ball`) free function is almost always a
/// hand-maintained twin of an exact implementation — the ball Scalar
/// instantiates the same generic core, so a dedicated `_ball` variant
/// is the same smell as a `_f64` one. Only thin instantiation
/// wrappers over a generic `_in` core are legitimate, and each
/// carries an explicit `xtask:allow(no-twin-f64)` waiver. Methods
/// (inside an `impl`) such as `to_f64` conversions are not flagged.
fn no_twin_float(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.tree.functions() {
        let item = f.item;
        if !f.is_free
            || item.test
            || !(item.name.ends_with("_f64") || item.name.ends_with("_ball"))
            || file.is_test_line(item.line)
            || file.allowed("no-twin-f64", item.line)
        {
            continue;
        }
        out.push(Violation {
            lint: "no-twin-f64",
            path: file.path.clone(),
            line: item.line,
            message: format!(
                "free function `{}` twins the float pipeline — implement the math \
                 once in a generic `_in` core and keep only a waived thin wrapper",
                item.name
            ),
        });
    }
    out
}

/// The simulator's trial loops are monomorphized so the per-player
/// decision inlines; a `Box<dyn LocalRule>` or `&dyn LocalRule`
/// inside a batch/kernel function reintroduces a virtual call per
/// decision and silently undoes that. Hot-path functions are
/// recognized by name (`batch` or `kernel` in the identifier — the
/// engine's naming convention); a deliberate dynamic baseline carries
/// an `xtask:allow(no-dyn-hot-loop)` waiver.
fn no_dyn_hot_loop(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.tree.functions() {
        let item = f.item;
        if !(item.name.contains("batch") || item.name.contains("kernel")) || item.test {
            continue;
        }
        let (start, end) = item.extent;
        let mut k = file.code.partition_point(|&i| i < start);
        while k < file.code.len() && file.code[k] < end {
            let i = file.code[k];
            let line = file.tokens[i].line;
            if file.tok(i) == "dyn"
                && file
                    .code
                    .get(k + 1)
                    .is_some_and(|&j| file.tok(j) == "LocalRule")
                && !file.is_test_line(line)
                && !file.allowed("no-dyn-hot-loop", line)
            {
                out.push(Violation {
                    lint: "no-dyn-hot-loop",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`dyn LocalRule` inside hot-path fn `{}` — monomorphize over \
                         `R: LocalRule` (or waive a deliberate dynamic baseline)",
                        item.name
                    ),
                });
            }
            k += 1;
        }
    }
    out
}

/// Calls that deliver a payload to another party — a channel receiver
/// (`send`), a socket peer (`write_all`, `flush`, `shutdown`) — or
/// hand a child process's fate back to the supervisor (`spawn`,
/// `kill`, `wait`, `try_wait`). A discarded `Result` from any of them
/// silently loses the payload, leaves the peer half-notified, or
/// leaks an unsupervised (possibly zombie) child.
const DELIVERY_CALLS: &[&str] = &[
    "send",
    "write_all",
    "flush",
    "shutdown",
    "spawn",
    "kill",
    "wait",
    "try_wait",
];

/// `let _ = tx.send(…)` (and its socket-side siblings `write_all`,
/// `flush`, `shutdown`) discards delivery failure: if the receiver is
/// gone the payload is silently lost, turning a dead worker, a
/// vanished client, or a shutdown race into unexplained data loss.
/// Library code must either propagate the error (as the pool's
/// `submit` does with `SimulationError::PoolClosed`), branch on it
/// (as the service's connection loop does on `write_all`), or shut a
/// channel down by *dropping* the sender — never by throwing the
/// result away. The process-supervision calls (`spawn`, `kill`,
/// `wait`, `try_wait`) are held to the same bar: `let _ = cmd.spawn()`
/// leaks an unsupervised child on success and hides the spawn failure
/// otherwise, and a discarded `kill`/`wait` result leaves the
/// orchestrator blind to whether the worker is actually gone (a
/// deliberate best-effort reap binds a named placeholder such as
/// `let _reaped = child.wait();`). `try_send` is a different
/// identifier token, so it is never matched; a deliberate drop
/// carries an `xtask:allow(no-silent-send)` waiver.
fn no_silent_send(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    let code = &file.code;
    let mut k = 0usize;
    while k < code.len() {
        if file.tok(code[k]) != "let"
            || code.get(k + 1).is_none_or(|&j| file.tok(j) != "_")
            || code
                .get(k + 2)
                .is_none_or(|&j| !file.tokens[j].is_punct(b'='))
        {
            k += 1;
            continue;
        }
        let let_line = file.tokens[code[k]].line;
        // Scan the statement: to the `;` at bracket depth 0.
        let mut depth = 0i64;
        let mut m = k + 3;
        let mut delivery: Option<(usize, &str)> = None;
        while m < code.len() {
            let t = &file.tokens[code[m]];
            if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'{') {
                depth += 1;
            } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'}') {
                depth -= 1;
            } else if t.is_punct(b';') && depth <= 0 {
                break;
            } else if delivery.is_none()
                && DELIVERY_CALLS.contains(&file.tok(code[m]))
                && code
                    .get(m + 1)
                    .is_some_and(|&j| file.tokens[j].is_punct(b'('))
            {
                delivery = Some((t.line, file.tok(code[m])));
            }
            m += 1;
        }
        if let Some((call_line, call)) = delivery {
            let waived = file.allowed("no-silent-send", let_line)
                || file.allowed("no-silent-send", call_line);
            if !file.is_test_line(let_line) && !waived {
                out.push(Violation {
                    lint: "no-silent-send",
                    path: file.path.clone(),
                    line: let_line,
                    message: format!(
                        "`let _ = …{call}(…)` silently drops a failed delivery — propagate \
                         or branch on the error (or drop the sender to close)"
                    ),
                });
            }
        }
        k = m;
    }
    out
}

/// `true` when `line` (1-based) lies inside a `const`/`static` item
/// per the tree — used by passes that exempt named constants.
#[must_use]
pub fn in_const_item(file: &SourceFile, line: usize) -> bool {
    fn walk(items: &[crate::tree::Item], tokens: &[crate::lexer::Token], line: usize) -> bool {
        items.iter().any(|item| {
            let (s, e) = item.extent;
            if s >= e || e > tokens.len() {
                return false;
            }
            let covers = tokens[s].line <= line && line <= tokens[e - 1].line;
            (covers && item.kind == ItemKind::Other && !item.name.is_empty())
                || walk(&item.children, tokens, line)
        })
    }
    walk(&file.tree.items, &file.tokens, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", FileKind::Lib, src)
    }

    #[test]
    fn unwrap_in_lib_code_fires() {
        let f = lib("#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let v = no_panic(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn inline_allow_silences_no_panic() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f() { g().expect(\"x\"); // xtask:allow(no-panic): invariant upheld by caller\n}\n",
        );
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let f =
            lib("#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\n");
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn catch_unwind_path_is_not_a_panic_macro() {
        let f =
            lib("#![forbid(unsafe_code)]\nfn f() { let _x = std::panic::catch_unwind(|| 1); }\n");
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn rng_lint_applies_even_in_tests() {
        let f = SourceFile::parse(
            "crates/x/tests/t.rs",
            FileKind::TestLike,
            "fn t() { let mut r = rand::thread_rng(); }\n",
        );
        assert_eq!(no_unseeded_rng(&f).len(), 1);
    }

    #[test]
    fn rand_random_path_fires() {
        let f = lib("#![forbid(unsafe_code)]\nfn f() -> f64 { rand::random() }\n");
        assert_eq!(no_unseeded_rng(&f).len(), 1);
    }

    #[test]
    fn print_in_bin_is_exempt() {
        let f = SourceFile::parse(
            "src/bin/cli.rs",
            FileKind::Bin,
            "fn main() { println!(\"hi\"); }\n",
        );
        assert!(no_print(&f).is_empty());
    }

    #[test]
    fn undocumented_panicking_pub_fn_fires() {
        let f = lib("#![forbid(unsafe_code)]\n/// Does things.\npub fn f(x: u8) {\n    assert!(x > 0);\n}\n");
        assert_eq!(panics_doc(&f).len(), 1);
    }

    #[test]
    fn documented_panicking_pub_fn_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\n/// Does things.\n///\n/// # Panics\n///\n/// Panics if `x` is zero.\npub fn f(x: u8) {\n    assert!(x > 0);\n}\n",
        );
        assert!(panics_doc(&f).is_empty());
    }

    #[test]
    fn attribute_between_doc_and_fn_keeps_the_doc_attached() {
        let f = lib(
            "#![forbid(unsafe_code)]\n/// Does.\n///\n/// # Panics\n///\n/// When.\n#[inline]\npub fn f(x: u8) {\n    assert!(x > 0);\n}\n",
        );
        assert!(panics_doc(&f).is_empty());
    }

    #[test]
    fn bare_exponent_literal_fires_and_const_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\nconst EPS: f64 = 1e-9;\nfn f(x: f64) -> bool { x < 1e-9 }\n",
        );
        let v = float_tolerance(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn missing_unsafe_header_fires_only_for_lib_rs() {
        let f = lib("fn f() {}\n");
        assert_eq!(unsafe_header(&f).len(), 1);
        let g = SourceFile::parse("crates/x/src/other.rs", FileKind::Lib, "fn f() {}\n");
        assert!(unsafe_header(&g).is_empty());
    }

    #[test]
    fn unsafe_header_tolerates_comments_between_tokens() {
        let f = lib("#![forbid(unsafe_code)] // the wall\nfn f() {}\n");
        assert!(unsafe_header(&f).is_empty());
    }

    #[test]
    fn unwaived_f64_free_function_fires() {
        let f = lib("#![forbid(unsafe_code)]\npub fn cdf_f64(t: f64) -> f64 {\n    t\n}\n");
        let v = no_twin_float(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn waived_f64_wrapper_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\npub fn cdf_f64(t: f64) -> f64 { // xtask:allow(no-twin-f64): instantiation wrapper\n    cdf_in(&t)\n}\n",
        );
        assert!(no_twin_float(&f).is_empty());
    }

    #[test]
    fn unwaived_ball_free_function_fires() {
        // The ball Scalar instantiates the same generic `_in` core, so
        // a dedicated `_ball` free function is the same twin smell.
        let f = lib("#![forbid(unsafe_code)]\npub fn cdf_ball(t: f64) -> f64 {\n    t\n}\n");
        let v = no_twin_float(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn waived_ball_wrapper_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\npub fn cdf_ball(t: f64) -> f64 { // xtask:allow(no-twin-f64): instantiation wrapper\n    cdf_in(&t)\n}\n",
        );
        assert!(no_twin_float(&f).is_empty());
    }

    #[test]
    fn f64_methods_and_test_helpers_are_exempt() {
        // A method lives inside its impl block; a test helper sits in
        // a #[cfg(test)] region. Neither is a twin pipeline.
        let f = lib(
            "#![forbid(unsafe_code)]\nimpl X {\n    pub fn to_f64(&self) -> f64 { 0.0 }\n}\n#[cfg(test)]\nmod tests {\n    fn probe_f64() -> f64 { 0.0 }\n}\n",
        );
        assert!(no_twin_float(&f).is_empty());
    }

    #[test]
    fn indented_free_fn_in_module_still_fires() {
        // The old column-0 heuristic missed free fns inside `mod`
        // blocks; the tree sees them.
        let f = lib(
            "#![forbid(unsafe_code)]\nmod inner {\n    pub fn cdf_f64(t: f64) -> f64 { t }\n}\n",
        );
        assert_eq!(no_twin_float(&f).len(), 1);
    }

    #[test]
    fn dyn_rule_in_batch_fn_fires() {
        let f =
            lib("#![forbid(unsafe_code)]\nfn run_batch(rule: &dyn LocalRule) -> u64 {\n    0\n}\n");
        let v = no_dyn_hot_loop(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dyn_rule_outside_hot_path_fns_is_exempt() {
        let f = lib("#![forbid(unsafe_code)]\nfn run(rule: &dyn LocalRule) -> u64 {\n    0\n}\n");
        assert!(no_dyn_hot_loop(&f).is_empty());
    }

    #[test]
    fn waived_dyn_baseline_is_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn kernel_baseline(\n    rule: &dyn LocalRule, // xtask:allow(no-dyn-hot-loop): deliberate dispatch baseline\n) -> u64 {\n    0\n}\n",
        );
        assert!(no_dyn_hot_loop(&f).is_empty());
    }

    #[test]
    fn silent_send_fires_in_lib_code() {
        let f = lib("#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    let _ = tx.send(1);\n}\n");
        let v = no_silent_send(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn multiline_silent_send_fires_at_the_let() {
        // The old line-oriented rule only saw single-line statements.
        let f =
            lib("#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    let _ =\n        tx.send(1);\n}\n");
        let v = no_silent_send(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn handled_sends_and_try_send_are_clean() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    if tx.send(1).is_err() {\n        return;\n    }\n    let _ = tx.try_send(2);\n}\n",
        );
        assert!(no_silent_send(&f).is_empty());
    }

    #[test]
    fn silent_send_in_tests_and_waived_sites_is_exempt() {
        let f = lib(
            "#![forbid(unsafe_code)]\nfn f(tx: Tx) {\n    let _ = tx.send(1); // xtask:allow(no-silent-send): receiver outlives us by construction\n}\n#[cfg(test)]\nmod tests {\n    fn t(tx: Tx) { let _ = tx.send(1); }\n}\n",
        );
        assert!(no_silent_send(&f).is_empty());
    }

    #[test]
    fn panic_token_inside_string_is_invisible() {
        let f = lib("#![forbid(unsafe_code)]\nfn f() -> &'static str { \"do not panic!(now)\" }\n");
        assert!(no_panic(&f).is_empty());
    }

    #[test]
    fn panic_token_inside_raw_byte_string_is_invisible() {
        // The legacy scrubber mis-handled `br#"…"#`; the lexer lexes
        // it as one opaque token.
        let f = lib("#![forbid(unsafe_code)]\nfn f() -> &'static [u8] { br#\"x.unwrap()\"# }\n");
        assert!(no_panic(&f).is_empty());
    }
}
