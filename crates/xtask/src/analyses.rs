//! The scope-aware analyses: checks that need the item tree and
//! per-function token ranges, which the line-regex lints could never
//! express. Same [`Violation`]/allowlist plumbing as the lints; the
//! workspace-level stream-fingerprint gate lives in
//! [`crate::fingerprint`].

use crate::lexer::TokenKind;
use crate::lints::{Lint, Violation};
use crate::source::{FileKind, SourceFile};
use crate::tree::FnView;

/// The per-file scope-aware analyses, in reporting order.
pub const ANALYSES: &[Lint] = &[
    Lint {
        id: "determinism-flow",
        summary: "every RNG seed must trace to a seed-named value, constant, or literal",
        check: determinism_flow,
    },
    Lint {
        id: "lock-discipline",
        summary: "forbid Mutex/RwLock guards held across send/recv/join/wait calls",
        check: lock_discipline,
    },
    Lint {
        id: "hot-path-alloc",
        summary: "forbid allocation in monomorphized kernel fns and the uniforms refill path",
        check: hot_path_alloc,
    },
];

/// Runs every per-file analysis over one file.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for analysis in ANALYSES {
        out.extend((analysis.check)(file));
    }
    out
}

/// Seeded-constructor names: calling one is where an RNG stream is
/// born, so its argument is where seed provenance must be visible.
const SEED_CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed"];

/// `true` when an identifier visibly carries seed provenance on its
/// own: it names a seed, or it is a named constant (determinism needs
/// a *fixed* origin, not a configurable one — `SHARD_SALT` and `42`
/// are as reproducible as `seed`).
fn seed_named(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("seed")
        || (text.chars().next().is_some_and(char::is_uppercase)
            && text
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
}

/// Determinism-flow: every call of a seeded RNG constructor in library
/// code must derive its seed argument from something visibly
/// seed-flavored — an identifier containing `seed` (a parameter, a
/// field, a local), an `UPPER_SNAKE` constant, an integer literal, or
/// a local `let` whose initializer already traced. A helper that
/// launders an arbitrary value into a generator (`fn make(x: u64) ->
/// StdRng { StdRng::seed_from_u64(x) }`) breaks the audit trail from
/// `SimulationParams::seed` to the stream and is exactly what this
/// pass flags: the fix is to carry `seed` in the name across the call
/// boundary, as [`batch_rng`'s] signature does.
///
/// [`batch_rng`'s]: https://example.invalid/ "crates/simulator/src/engine.rs"
fn determinism_flow(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.tree.functions() {
        if f.item.test {
            continue;
        }
        check_fn_seed_flow(file, &f, &mut out);
    }
    out
}

/// Checks one function's seed provenance; appends violations.
fn check_fn_seed_flow(file: &SourceFile, f: &FnView<'_>, out: &mut Vec<Violation>) {
    let Some((start, end)) = f.item.body else {
        return;
    };
    // Parameters whose name or type mentions a seed are trusted
    // origins; so is any ident containing "seed" (fields via
    // `self.seed`, captured outer locals) — the point is the *name*
    // carries the provenance.
    let mut traced: Vec<String> = Vec::new();
    for param in &f.item.sig.params {
        if param.ty.contains("Seed") || param.names.iter().any(|n| seed_named(n)) {
            traced.extend(param.names.iter().cloned());
        }
    }
    let code: Vec<usize> = file
        .code
        .iter()
        .copied()
        .filter(|&i| i >= start && i < end)
        .collect();
    let is_traced = |text: &str, kind: TokenKind, traced: &[String]| {
        matches!(kind, TokenKind::Int)
            || (kind == TokenKind::Ident && (seed_named(text) || traced.iter().any(|t| t == text)))
    };
    let mut k = 0usize;
    while k < code.len() {
        let text = file.tok(code[k]);
        // `let [mut] name = <rhs>;` — the binding inherits provenance
        // from its initializer, giving intra-function flow.
        if text == "let" {
            if let Some((name, rhs, _)) = scan_let(file, &code, k) {
                // Provenance flows into a binding from a traced ident,
                // or from an all-constant initializer. A literal mixed
                // with an untraced ident (`x ^ 0xabcd`) must NOT
                // launder `x` into a trusted local.
                let has_traced_ident = rhs.iter().any(|&i| {
                    file.tokens[i].kind == TokenKind::Ident
                        && (seed_named(file.tok(i)) || traced.iter().any(|t| t == file.tok(i)))
                });
                let pure_constant = !rhs.is_empty()
                    && rhs.iter().all(|&i| {
                        matches!(file.tokens[i].kind, TokenKind::Int | TokenKind::Punct(_))
                    });
                if has_traced_ident || pure_constant {
                    traced.push(name);
                }
                // Step INTO the initializer rather than over it: a
                // let-bound `seed_from_u64(x)` is still a call site,
                // and the provenance map above is already updated.
                k += 1;
                continue;
            }
        }
        let is_call = SEED_CONSTRUCTORS.contains(&text)
            && code
                .get(k + 1)
                .is_some_and(|&j| file.tokens[j].is_punct(b'('))
            && (k == 0 || file.tok(code[k - 1]) != "fn");
        if is_call {
            let line = file.tokens[code[k]].line;
            let args = argument_span(file, &code, k + 1);
            let ok = args
                .iter()
                .any(|&i| is_traced(file.tok(i), file.tokens[i].kind, &traced));
            if !ok && !file.is_test_line(line) && !file.allowed("determinism-flow", line) {
                out.push(Violation {
                    lint: "determinism-flow",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{text}` argument has no visible seed provenance in `{}` — \
                         derive it from a seed-named value, constant, or literal \
                         (or rename the carrying parameter)",
                        f.qualified
                    ),
                });
            }
        }
        k += 1;
    }
}

/// Parses `let [mut] name … = <rhs> ;` starting at `code[k] == "let"`.
/// Returns `(name, rhs token indices, index after the statement)`, or
/// `None` for patterns this pass does not track (destructuring,
/// let-else is fine — the rhs ends at `else`).
fn scan_let(file: &SourceFile, code: &[usize], k: usize) -> Option<(String, Vec<usize>, usize)> {
    let mut m = k + 1;
    if code.get(m).is_some_and(|&i| file.tok(i) == "mut") {
        m += 1;
    }
    let name_tok = *code.get(m)?;
    if file.tokens[name_tok].kind != TokenKind::Ident {
        return None;
    }
    let name = file.tok(name_tok).to_owned();
    // Skip an optional `: Type` annotation to the `=` at depth 0.
    let mut depth = 0i64;
    while m < code.len() {
        let t = &file.tokens[code[m]];
        if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'{') || t.is_punct(b'<') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'}') || t.is_punct(b'>') {
            depth -= 1;
        } else if t.is_punct(b'=') && depth <= 0 {
            break;
        } else if t.is_punct(b';') && depth <= 0 {
            return None; // `let name;` — no initializer
        }
        m += 1;
    }
    let rhs_start = m + 1;
    let mut rhs = Vec::new();
    let mut depth = 0i64;
    m = rhs_start;
    while m < code.len() {
        let t = &file.tokens[code[m]];
        if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'{') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && (t.is_punct(b';') || file.tok(code[m]) == "else") {
            break;
        }
        rhs.push(code[m]);
        m += 1;
    }
    Some((name, rhs, m))
}

/// Token indices of a call's arguments: `code[open_k]` must be the
/// opening `(`; the span excludes the parens themselves.
fn argument_span(file: &SourceFile, code: &[usize], open_k: usize) -> Vec<usize> {
    let mut depth = 0i64;
    let mut out = Vec::new();
    for &i in &code[open_k..] {
        let t = &file.tokens[i];
        if t.is_punct(b'(') {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_punct(b')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        out.push(i);
    }
    out
}

/// Calls that block the current thread on another thread, a channel,
/// a socket peer (the service daemon's accept/read/write path: a
/// connection thread stalled by a slow client must never be holding a
/// shared lock), or a child process (the orchestrator's supervision
/// path: `wait`/`wait_with_output` block until the worker exits, and
/// even the "non-blocking" `kill`/`try_wait` are syscalls against
/// process state that must not run under a shared lock — a wedged
/// worker would stall every contender).
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_with_output",
    "accept",
    "read_line",
    "write_all",
    "flush",
    "kill",
    "try_wait",
];

/// Result adapters that pass a lock guard through unchanged, so
/// `m.lock().unwrap()` still binds a guard.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Lock-discipline: a `let`-bound `Mutex`/`RwLock` guard must not be
/// live across a blocking call — a worker that blocks on `recv` or
/// `join` while holding a lock turns every other contender into a
/// straggler, and pairs of such sites deadlock. A binding counts as a
/// guard when its initializer's final call (after guard-preserving
/// adapters like `.unwrap()`) is `.lock()`, an argument-less
/// `.read()`/`.write()`, or any call whose name contains `lock`
/// (helpers like `lock_supervisor`). The guard dies at the end of its
/// block or at an explicit `drop(name)`; extracting owned data out of
/// the guard in the same statement (`….lock().….collect()`) never
/// binds one.
fn lock_discipline(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    let code = &file.code;
    // Live guards: (binding name, brace depth at the binding).
    let mut guards: Vec<(String, i64)> = Vec::new();
    let mut depth = 0i64;
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let t = &file.tokens[i];
        if t.is_punct(b'{') {
            depth += 1;
        } else if t.is_punct(b'}') {
            depth -= 1;
            guards.retain(|&(_, d)| d <= depth);
        } else if file.tok(i) == "drop"
            && code
                .get(k + 1)
                .is_some_and(|&j| file.tokens[j].is_punct(b'('))
        {
            if let Some(&name_i) = code.get(k + 2) {
                let name = file.tok(name_i);
                guards.retain(|(g, _)| g != name);
            }
        } else if file.tok(i) == "let" {
            if let Some((name, acquires)) = guard_binding(file, code, k) {
                if acquires && name != "_" {
                    guards.push((name, depth));
                }
            }
        } else if !guards.is_empty()
            && BLOCKING_CALLS.contains(&file.tok(i))
            && code
                .get(k + 1)
                .is_some_and(|&j| file.tokens[j].is_punct(b'('))
            && k > 0
            && file.tokens[code[k - 1]].is_punct(b'.')
        {
            let line = t.line;
            if !file.is_test_line(line) && !file.allowed("lock-discipline", line) {
                let held: Vec<&str> = guards.iter().map(|(g, _)| g.as_str()).collect();
                out.push(Violation {
                    lint: "lock-discipline",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "blocking `.{}()` while lock guard `{}` is live — drop the \
                         guard first or move the blocking call out of its scope",
                        file.tok(i),
                        held.join("`, `"),
                    ),
                });
            }
        }
        k += 1;
    }
    out
}

/// Inspects the `let` statement at `code[k]`: returns the first bound
/// name and whether the initializer leaves a lock guard in it.
fn guard_binding(file: &SourceFile, code: &[usize], k: usize) -> Option<(String, bool)> {
    // Pattern: collect idents to the `=` at depth 0, skipping binding
    // noise; the guard name is the last pattern ident (`Ok(guard)`,
    // `mut sup`).
    let mut m = k + 1;
    let mut depth = 0i64;
    let mut name: Option<String> = None;
    while m < code.len() {
        let t = &file.tokens[code[m]];
        if t.is_punct(b'(') || t.is_punct(b'<') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b'>') {
            depth -= 1;
        } else if t.is_punct(b'=') && depth <= 0 {
            break;
        } else if t.is_punct(b';') && depth <= 0 {
            return None;
        } else if t.kind == TokenKind::Ident && depth <= 1 {
            let text = file.tok(code[m]);
            if !matches!(text, "mut" | "ref" | "Ok" | "Err" | "Some" | "None") {
                // A `: Type` annotation ident must not shadow the
                // binding; the first plausible name wins.
                name.get_or_insert_with(|| text.to_owned());
            }
        }
        m += 1;
    }
    let name = name?;
    // Initializer: collect the method-call chain at depth 0, up to the
    // statement end (`;` or let-else `else`).
    let mut calls: Vec<&str> = Vec::new();
    let mut empty_args: Vec<bool> = Vec::new();
    let mut depth = 0i64;
    m += 1;
    while m < code.len() {
        let t = &file.tokens[code[m]];
        if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'{') {
            depth += 1;
        } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && (t.is_punct(b';') || file.tok(code[m]) == "else") {
            break;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && code
                .get(m + 1)
                .is_some_and(|&j| file.tokens[j].is_punct(b'('))
        {
            calls.push(file.tok(code[m]));
            empty_args.push(
                code.get(m + 2)
                    .is_some_and(|&j| file.tokens[j].is_punct(b')')),
            );
        }
        m += 1;
    }
    // Walk the chain backwards past guard-preserving adapters; the
    // call that produced the bound value decides guard-ness.
    let mut idx = calls.len();
    while idx > 0 && GUARD_ADAPTERS.contains(&calls[idx - 1]) {
        idx -= 1;
    }
    let acquires = idx > 0 && {
        let producer = calls[idx - 1];
        producer == "lock"
            || producer.contains("lock")
            || (matches!(producer, "read" | "write") && empty_args[idx - 1])
    };
    Some((name, acquires))
}

/// Tokens that allocate (or copy into a fresh allocation) when they
/// appear as calls/macros in a hot function.
const ALLOC_METHODS: &[&str] = &["collect", "clone", "to_vec", "to_owned"];

/// `true` when `f` is one of the functions the batch throughput
/// depends on: the monomorphized batch runners (sequential and
/// lane-batched), the kernel decision methods, the uniform-source
/// draw/refill path, and the stream-v3 counter pipeline (the Threefry
/// ladder, its unit conversion, the lane-group plane fill, and the
/// per-draw replay accessor). These execute per trial — or per lane
/// group, or per 256 draws; one stray allocation there undoes the
/// monomorphization win. `LaneUniforms::new` is the one cold spot in
/// its impl: it allocates the plane rows exactly once per batch so
/// `fill` never has to.
fn is_hot_path(f: &FnView<'_>) -> bool {
    f.item.name == "run_batch"
        || f.item.name == "run_lane_batch"
        || f.qualified.starts_with("BufferedUniforms::")
        || f.qualified.starts_with("ScalarUniforms::")
        || (f.qualified.starts_with("LaneUniforms") && f.item.name != "new")
        || matches!(
            f.item.name.as_str(),
            "threefry4x64_lanes" | "threefry4x64" | "word_to_unit" | "lane_draw"
        )
        || (!f.is_free
            && matches!(
                f.item.name.as_str(),
                "decide" | "players" | "next_unit" | "refill" | "sends_to_zero"
            ))
}

/// Hot-path-alloc: forbid `Vec::new`, `vec!`, `Box::new`, `.collect()`,
/// `.clone()`, `.to_vec()`, `.to_owned()` inside the hot functions.
fn hot_path_alloc(file: &SourceFile) -> Vec<Violation> {
    if file.kind != FileKind::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in file.tree.functions() {
        if f.item.test || !is_hot_path(&f) {
            continue;
        }
        let Some((start, end)) = f.item.body else {
            continue;
        };
        let code: Vec<usize> = file
            .code
            .iter()
            .copied()
            .filter(|&i| i >= start && i < end)
            .collect();
        for (k, &i) in code.iter().enumerate() {
            let text = file.tok(i);
            let line = file.tokens[i].line;
            if file.is_test_line(line) || file.allowed("hot-path-alloc", line) {
                continue;
            }
            let dotted_alloc = ALLOC_METHODS.contains(&text)
                && k > 0
                && file.tokens[code[k - 1]].is_punct(b'.')
                && code
                    .get(k + 1)
                    .is_some_and(|&j| file.tokens[j].is_punct(b'('));
            let ctor_alloc = matches!(text, "Vec" | "Box")
                && code
                    .get(k + 1)
                    .is_some_and(|&j| file.tokens[j].is_punct(b':'))
                && code.get(k + 3).is_some_and(|&j| file.tok(j) == "new");
            let vec_macro = text == "vec"
                && code
                    .get(k + 1)
                    .is_some_and(|&j| file.tokens[j].is_punct(b'!'));
            if dotted_alloc || ctor_alloc || vec_macro {
                out.push(Violation {
                    lint: "hot-path-alloc",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{text}` allocates inside hot-path fn `{}` — hoist the \
                         allocation out of the per-trial loop",
                        f.qualified
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", FileKind::Lib, src)
    }

    #[test]
    fn seed_param_traces_through_arithmetic() {
        let f = lib(
            "fn batch_rng(seed: u64, batch: u64) -> StdRng {\n    StdRng::seed_from_u64(splitmix(seed ^ batch.wrapping_mul(0x9e37)))\n}\n",
        );
        assert!(determinism_flow(&f).is_empty());
    }

    #[test]
    fn laundering_through_unrelated_param_fires() {
        let f = lib("fn make(x: u64) -> StdRng {\n    StdRng::seed_from_u64(x)\n}\n");
        let v = determinism_flow(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn let_binding_carries_provenance() {
        let f = lib(
            "fn make(seed: u64) -> StdRng {\n    let mixed = seed ^ 0x9e37;\n    StdRng::seed_from_u64(mixed)\n}\n",
        );
        assert!(determinism_flow(&f).is_empty());
    }

    #[test]
    fn literal_and_const_seeds_are_deterministic() {
        let f = lib(
            "const SALT: u64 = 7;\nfn a() -> StdRng { StdRng::seed_from_u64(42) }\nfn b() -> StdRng { StdRng::seed_from_u64(SALT) }\n",
        );
        assert!(determinism_flow(&f).is_empty());
    }

    #[test]
    fn self_seed_field_is_traced() {
        let f = lib(
            "impl Run {\n    fn rng(&self) -> StdRng { StdRng::seed_from_u64(self.seed) }\n}\n",
        );
        assert!(determinism_flow(&f).is_empty());
    }

    #[test]
    fn fn_definition_is_not_a_call_site() {
        let f = lib("fn seed_from_u64(seed: u64) -> Self {\n    Self::from(seed)\n}\n");
        assert!(determinism_flow(&f).is_empty());
    }

    #[test]
    fn recv_under_let_bound_lock_guard_fires() {
        let f = lib(
            "fn f(q: &Mutex<Receiver<u8>>) {\n    let guard = q.lock().unwrap();\n    let _x = guard.recv();\n}\n",
        );
        let v = lock_discipline(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn let_else_guard_pattern_is_tracked() {
        let f = lib(
            "fn f(q: &Mutex<Receiver<u8>>) {\n    let Ok(guard) = q.lock() else { return };\n    let _x = guard.recv();\n}\n",
        );
        assert_eq!(lock_discipline(&f).len(), 1);
    }

    #[test]
    fn guard_scoped_to_inner_block_is_clean() {
        let f = lib(
            "fn f(q: &Mutex<Receiver<u8>>, rx: &Receiver<u8>) {\n    let msg = {\n        let guard = q.lock().unwrap();\n        guard.try_recv()\n    };\n    let _x = rx.recv();\n}\n",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let f = lib(
            "fn f(m: &Mutex<u8>, rx: &Receiver<u8>) {\n    let guard = m.lock().unwrap();\n    drop(guard);\n    let _x = rx.recv();\n}\n",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn lock_helper_call_binds_a_guard() {
        let f = lib(
            "impl Pool {\n    fn f(&self) {\n        let sup = self.lock_supervisor();\n        for h in sup.handles.drain(..) {\n            let _r = h.join();\n        }\n    }\n}\n",
        );
        assert_eq!(lock_discipline(&f).len(), 1);
    }

    #[test]
    fn extracting_owned_data_from_a_lock_does_not_bind_a_guard() {
        let f = lib(
            "impl Pool {\n    fn f(&self) {\n        let handles: Vec<Handle> = self.lock_supervisor().handles.drain(..).collect();\n        for h in handles {\n            let _r = h.join();\n        }\n    }\n}\n",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn rwlock_read_guard_across_join_fires() {
        let f = lib(
            "fn f(m: &RwLock<u8>, h: Handle) {\n    let state = m.read().unwrap();\n    let _r = h.join();\n}\n",
        );
        assert_eq!(lock_discipline(&f).len(), 1);
    }

    #[test]
    fn io_read_with_buffer_is_not_a_lock() {
        let f = lib(
            "fn f(src: &mut File, rx: &Receiver<u8>, buf: &mut [u8]) {\n    let n = src.read(buf).unwrap();\n    let _x = rx.recv();\n}\n",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn waived_handoff_recv_is_clean() {
        let f = lib(
            "fn f(q: &Mutex<Receiver<u8>>) {\n    let guard = q.lock().unwrap();\n    // xtask:allow(lock-discipline): shared-queue handoff holds the lock across recv by design\n    let _x = guard.recv();\n}\n",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn collect_in_run_batch_fires() {
        let f = lib(
            "fn run_batch<K: Kernel>(kernel: &K) -> Vec<u64> {\n    (0..4).map(|i| i).collect()\n}\n",
        );
        let v = hot_path_alloc(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn clone_in_refill_method_fires_and_cold_fn_is_exempt() {
        let f = lib(
            "impl BufferedUniforms {\n    fn refill(&mut self) {\n        let b = self.buffer.clone();\n    }\n}\nfn setup() -> Vec<u64> {\n    vec![1, 2].to_vec()\n}\n",
        );
        let v = hot_path_alloc(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn vec_new_and_macro_in_decide_fire() {
        let f = lib(
            "impl ThresholdKernel {\n    fn decide(&self, player: usize) -> Bin {\n        let scratch = Vec::new();\n        let more = vec![0u8; 4];\n        Bin::Zero\n    }\n}\n",
        );
        assert_eq!(hot_path_alloc(&f).len(), 2);
    }

    #[test]
    fn collect_in_run_lane_batch_fires() {
        let f = lib(
            "fn run_lane_batch<K: LaneKernel, const L: usize>(kernel: &K) -> u64 {\n    let lanes: Vec<u64> = (0..L).map(|i| i as u64).collect();\n    lanes.len() as u64\n}\n",
        );
        let v = hot_path_alloc(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn lane_uniforms_fill_is_hot_but_its_constructor_is_not() {
        let f = lib(
            "impl<const L: usize> LaneUniforms<L> {\n    pub(crate) fn new(players: usize) -> Self {\n        let rows = vec![[0.0; L]; players];\n        Self { rows }\n    }\n    pub(crate) fn fill(&mut self, trial0: u64) {\n        let scratch = self.rows.to_vec();\n    }\n}\n",
        );
        let v = hot_path_alloc(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 7);
        assert!(v[0].message.contains("fill"));
    }

    #[test]
    fn threefry_ladder_and_lane_draw_are_hot() {
        let f = lib(
            "pub fn threefry4x64_lanes<const L: usize>(key: &CounterKey) -> [u64; 4] {\n    let ks = key.ks.to_vec();\n    [ks[0], ks[1], ks[2], ks[3]]\n}\npub(crate) fn lane_draw(key: &CounterKey, trial: u64) -> f64 {\n    let block = key.ks.to_vec();\n    block[0] as f64\n}\n",
        );
        assert_eq!(hot_path_alloc(&f).len(), 2);
    }

    #[test]
    fn sends_to_zero_method_is_hot() {
        let f = lib(
            "impl LaneKernel for ThresholdKernel {\n    fn sends_to_zero(&self, player: usize, input: f64, _coin: f64) -> bool {\n        let t = self.thresholds.clone();\n        input < t[player]\n    }\n}\n",
        );
        assert_eq!(hot_path_alloc(&f).len(), 1);
    }

    #[test]
    fn alloc_free_hot_path_is_clean() {
        let f = lib(
            "impl BufferedUniforms {\n    fn next_unit(&mut self) -> f64 {\n        let sample = self.buffer[self.next];\n        self.next += 1;\n        sample\n    }\n}\n",
        );
        assert!(hot_path_alloc(&f).is_empty());
    }
}
