//! `cargo xtask bench-check <fresh> <committed>` — regression gate
//! comparing a freshly measured benchmark JSON (the `--quick` output
//! of `cargo bench`) against the committed reference under
//! `results/BENCH_*.json`.
//!
//! The gate is on **speedups**, not absolute times: absolute
//! nanoseconds vary with the host, but the paired min-time ratio of
//! optimized-over-baseline is the quantity the committed file
//! attests. A fresh speedup may beat the committed one freely; it
//! fails the gate when it falls below the committed value by more
//! than the tolerance band
//!
//! ```text
//! tolerance(committed) = max(0.25 × committed, 0.15)
//! ```
//!
//! — a quarter of the attested ratio (shared-runner noise scales with
//! the ratio itself) floored at 0.15 absolute so near-1.0x overhead
//! rows don't get a vanishing band. Every committed row must be
//! present in the fresh measurement: a label that disappears is a
//! silently dropped benchmark, which is itself a regression. Extra
//! fresh rows are allowed (new benchmarks land before the reference
//! is re-recorded).

use crate::metrics::{get, get_in, parse_json, Json};

/// Speedup slack as a fraction of the committed ratio.
const RELATIVE_TOLERANCE: f64 = 0.25;
/// Absolute floor of the tolerance band.
const ABSOLUTE_TOLERANCE: f64 = 0.15;

/// One `{label, speedup}` row from a bench document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// The row's label, e.g. `"threshold n = 8 · lane"`.
    pub label: String,
    /// The paired min-time speedup recorded for the row.
    pub speedup: f64,
}

/// What a passing comparison covered, for the success report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchCheckSummary {
    /// Number of committed rows compared.
    pub rows: usize,
}

impl std::fmt::Display for BenchCheckSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} row(s) within the tolerance band (fresh ≥ committed − max({RELATIVE_TOLERANCE} × committed, {ABSOLUTE_TOLERANCE}))",
            self.rows
        )
    }
}

/// The minimum fresh speedup the band accepts for a committed ratio.
#[must_use]
pub fn floor_for(committed: f64) -> f64 {
    committed - (RELATIVE_TOLERANCE * committed).max(ABSOLUTE_TOLERANCE)
}

/// Parses a `write_bench_json` document into its rows.
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON, a missing `bench`/`results` field, or a row without a string
/// `label` / numeric `speedup`.
pub fn parse_bench_document(text: &str) -> Result<Vec<BenchRow>, String> {
    let root = parse_json(text)?;
    let doc = root.as_object("document root")?;
    get(doc, "bench")?.as_string("bench")?;
    let results = get(doc, "results")?.as_array("results")?;
    let mut rows = Vec::with_capacity(results.len());
    for row in results {
        let fields = row.as_object("results row")?;
        let label = get_in(fields, "label", "results row")?
            .as_string("label")?
            .to_owned();
        let speedup = as_f64(get_in(fields, "speedup", "results row")?, "speedup")?;
        if !speedup.is_finite() || speedup < 0.0 {
            return Err(format!(
                "row {label:?}: speedup must be a finite non-negative number, found {speedup}"
            ));
        }
        rows.push(BenchRow { label, speedup });
    }
    if rows.is_empty() {
        return Err("results must contain at least one row".to_owned());
    }
    Ok(rows)
}

/// Compares a fresh measurement against the committed reference.
///
/// # Errors
///
/// Returns one message per failure, joined by newlines: every
/// committed label missing from the fresh rows, and every fresh
/// speedup below its row's tolerance floor.
pub fn compare_bench_rows(
    fresh: &[BenchRow],
    committed: &[BenchRow],
) -> Result<BenchCheckSummary, String> {
    let mut failures = Vec::new();
    for reference in committed {
        match fresh.iter().find(|r| r.label == reference.label) {
            None => failures.push(format!(
                "row {:?}: present in the committed reference but missing from the fresh measurement",
                reference.label
            )),
            Some(row) => {
                let floor = floor_for(reference.speedup);
                if row.speedup < floor {
                    failures.push(format!(
                        "row {:?}: fresh speedup {:.3}x fell below the tolerance floor {:.3}x (committed {:.3}x)",
                        reference.label, row.speedup, floor, reference.speedup
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(BenchCheckSummary {
            rows: committed.len(),
        })
    } else {
        Err(failures.join("\n"))
    }
}

/// Validates a fresh-vs-committed pair of bench documents.
///
/// # Errors
///
/// Returns the first parse failure (tagged with which side failed),
/// or the joined comparison failures.
pub fn check_bench_documents(
    fresh_text: &str,
    committed_text: &str,
) -> Result<BenchCheckSummary, String> {
    let fresh = parse_bench_document(fresh_text).map_err(|e| format!("fresh document: {e}"))?;
    let committed =
        parse_bench_document(committed_text).map_err(|e| format!("committed document: {e}"))?;
    compare_bench_rows(&fresh, &committed)
}

/// Reads `speedup` from its raw number token; `as_u64` is too narrow
/// for ratio fields.
// xtask:allow(no-twin-f64): JSON token accessor, not a twin of an exact pipeline
fn as_f64(value: &Json, what: &str) -> Result<f64, String> {
    match value {
        Json::Number(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("{what} must be a number, found {raw}")),
        other => Err(format!(
            "{what} must be a number, found {}",
            other.type_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(label, speedup)| {
                format!(
                    "    {{\"label\": \"{label}\", \"cold_ns\": 1000.0, \"memoized_ns\": 500.0, \"speedup\": {speedup:.3}}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"simulator_throughput\",\n  \"results\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn identical_documents_pass() {
        let text = doc(&[("threshold n = 8 · lane", 4.380), ("buffered", 0.931)]);
        let summary = check_bench_documents(&text, &text).expect("identical documents pass");
        assert_eq!(summary.rows, 2);
    }

    #[test]
    fn fresh_above_committed_passes() {
        let committed = doc(&[("lane", 4.0)]);
        let fresh = doc(&[("lane", 5.2)]);
        assert!(check_bench_documents(&fresh, &committed).is_ok());
    }

    #[test]
    fn tolerance_band_scales_with_the_committed_ratio() {
        // 25% of 4.0 is 1.0 > 0.15: the relative term governs.
        assert!((floor_for(4.0) - 3.0).abs() < 1e-12);
        // 25% of 0.93 is 0.2325 > 0.15: still relative.
        assert!((floor_for(0.93) - 0.6975).abs() < 1e-12);
        // 25% of 0.4 is 0.1 < 0.15: the absolute floor governs.
        assert!((floor_for(0.4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn synthetic_regression_fixture_fails() {
        // The committed reference attests 4.38x on the lane row; a
        // synthetic regression to 2.9x (below the 3.285x floor) must
        // fail the gate while the healthy row stays quiet.
        let committed = doc(&[
            ("threshold n = 8 · lane", 4.380),
            ("threshold n = 8 · kernel+buffered", 2.592),
        ]);
        let regressed = doc(&[
            ("threshold n = 8 · lane", 2.900),
            ("threshold n = 8 · kernel+buffered", 2.500),
        ]);
        let message = check_bench_documents(&regressed, &committed)
            .expect_err("synthetic regression must fail");
        assert!(message.contains("threshold n = 8 · lane"));
        assert!(message.contains("2.900x"));
        assert!(!message.contains("kernel+buffered"));
    }

    #[test]
    fn within_band_regression_passes() {
        let committed = doc(&[("lane", 4.0)]);
        let fresh = doc(&[("lane", 3.1)]); // floor is 3.0
        assert!(check_bench_documents(&fresh, &committed).is_ok());
    }

    #[test]
    fn missing_committed_row_fails() {
        let committed = doc(&[("lane", 4.0), ("buffered", 0.93)]);
        let fresh = doc(&[("lane", 4.1)]);
        let message = check_bench_documents(&fresh, &committed).expect_err("dropped row must fail");
        assert!(message.contains("buffered"));
        assert!(message.contains("missing from the fresh measurement"));
    }

    #[test]
    fn extra_fresh_rows_are_allowed() {
        let committed = doc(&[("lane", 4.0)]);
        let fresh = doc(&[("lane", 4.1), ("brand new row", 1.5)]);
        assert!(check_bench_documents(&fresh, &committed).is_ok());
    }

    #[test]
    fn near_one_rows_get_the_absolute_floor() {
        // Metrics-overhead rows sit at ≈1.0x; a quarter-relative band
        // would be 0.25 wide, but the absolute floor only matters
        // below 0.6x committed. Check a genuine overhead blowup still
        // fails: committed 1.000, fresh 0.70 < floor 0.75.
        let committed = doc(&[("threshold n = 8 · kernel+metrics", 1.000)]);
        let fresh = doc(&[("threshold n = 8 · kernel+metrics", 0.700)]);
        assert!(check_bench_documents(&fresh, &committed).is_err());
    }

    #[test]
    fn malformed_documents_are_tagged_by_side() {
        let good = doc(&[("lane", 4.0)]);
        let err = check_bench_documents("not json", &good).expect_err("bad fresh side");
        assert!(err.starts_with("fresh document:"));
        let err = check_bench_documents(&good, "{}").expect_err("bad committed side");
        assert!(err.starts_with("committed document:"));
    }

    #[test]
    fn rejects_non_finite_and_missing_fields() {
        let no_speedup = "{\n  \"bench\": \"x\",\n  \"results\": [{\"label\": \"a\"}]\n}";
        assert!(parse_bench_document(no_speedup)
            .expect_err("missing speedup")
            .contains("speedup"));
        let empty = "{\n  \"bench\": \"x\",\n  \"results\": []\n}";
        assert!(parse_bench_document(empty)
            .expect_err("empty results")
            .contains("at least one row"));
    }

    #[test]
    fn committed_reference_parses_and_self_compares() {
        // The real committed artifact must stay parseable by this
        // gate and trivially pass against itself.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_simulator_throughput.json"
        );
        let text = std::fs::read_to_string(path).expect("committed bench artifact exists");
        let rows = parse_bench_document(&text).expect("committed bench artifact parses");
        assert!(rows.iter().any(|r| r.label == "threshold n = 8 · lane"));
        let summary = compare_bench_rows(&rows, &rows).expect("self-comparison passes");
        assert_eq!(summary.rows, rows.len());
    }
}
