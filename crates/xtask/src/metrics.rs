//! `cargo xtask metrics-check <path>` — validator for the
//! `engine-metrics/v1` JSON documents written by
//! `MetricsSnapshot::write_json` (and emitted by the
//! `engine_metrics` example).
//!
//! CI runs the example and then this check, so a drifting field name,
//! a silently dropped counter, or a histogram whose buckets stop
//! summing to its count fails the pipeline instead of producing
//! unreadable artifacts. The parser is a dependency-free
//! recursive-descent reader of the JSON subset the writer emits
//! (objects, arrays, strings, non-negative integers); anything outside
//! that subset is itself a finding.

/// Counter keys an `engine-metrics/v1` document must carry, matching
/// the simulator's `keys` module one for one.
pub const REQUIRED_COUNTERS: &[&str] = &[
    "engine.runs",
    "engine.trials",
    "engine.wins",
    "engine.batches",
    "engine.recovered_batches",
    "chaos.faults",
    "engine.dispatch.threshold",
    "engine.dispatch.oblivious",
    "engine.dispatch.opaque",
    "engine.dispatch.dyn",
    "engine.dispatch.lane",
    "rng.draws",
    "rng.refills",
    "rng.lane_blocks",
    "pool.jobs",
    "pool.batches",
    "pool.panics",
    "pool.respawns",
    "pool.expired_jobs",
    "pool.busy_ns",
    "pool.idle_ns",
    "sweep.points",
    "sweep.checkpoint_writes",
    "sweep.resumed_points",
    "shard.issued",
    "shard.completed",
    "shard.reissued",
    "shard.killed",
    "shard.corrupt",
    "analytic.memo_hits",
    "analytic.memo_misses",
];

/// Histogram keys an `engine-metrics/v1` document must carry.
pub const REQUIRED_HISTOGRAMS: &[&str] = &["pool.job_ns", "sweep.point_ns", "shard.span_ns"];

/// What a valid document contained, for the success report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Value of the `rng_stream_version` field.
    pub rng_stream_version: u64,
    /// Number of counters present (required plus any extras).
    pub counters: usize,
    /// Number of histograms present.
    pub histograms: usize,
    /// Total samples across all histograms.
    pub samples: u64,
}

impl std::fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine-metrics/v1 (rng stream v{}): {} counters, {} histograms, {} samples",
            self.rng_stream_version, self.counters, self.histograms, self.samples
        )
    }
}

/// Validates the text of an `engine-metrics/v1` document.
///
/// # Errors
///
/// Returns a `path-free` description of the first structural problem:
/// malformed JSON, wrong schema tag, a missing or negative counter, a
/// malformed histogram, or bucket counts that do not sum to the
/// histogram's total.
pub fn validate_metrics_document(text: &str) -> Result<MetricsSummary, String> {
    let root = parse_json(text)?;
    let doc = root.as_object("document root")?;

    let schema = get(doc, "schema")?.as_string("schema")?;
    if schema != "engine-metrics/v1" {
        return Err(format!(
            "schema is {schema:?}, expected \"engine-metrics/v1\""
        ));
    }
    let rng_stream_version = get(doc, "rng_stream_version")?.as_u64("rng_stream_version")?;
    if rng_stream_version == 0 {
        return Err("rng_stream_version must be at least 1".to_owned());
    }

    let counters = get(doc, "counters")?.as_object("counters")?;
    for key in REQUIRED_COUNTERS {
        get_in(counters, key, "counters")?.as_u64(key)?;
    }
    for (key, value) in counters {
        value.as_u64(key)?;
    }

    let histograms = get(doc, "histograms")?.as_object("histograms")?;
    let mut samples = 0u64;
    for key in REQUIRED_HISTOGRAMS {
        samples += check_histogram(key, get_in(histograms, key, "histograms")?)?;
    }
    for (key, value) in histograms {
        if !REQUIRED_HISTOGRAMS.contains(&key.as_str()) {
            samples += check_histogram(key, value)?;
        }
    }

    Ok(MetricsSummary {
        rng_stream_version,
        counters: counters.len(),
        histograms: histograms.len(),
        samples,
    })
}

/// Checks one histogram object: `count`/`sum` fields, buckets with
/// strictly increasing `le` bounds, and bucket counts summing exactly
/// to `count`. Returns the histogram's sample count.
fn check_histogram(key: &str, value: &Json) -> Result<u64, String> {
    let hist = value.as_object(key)?;
    let count = get_in(hist, "count", key)?.as_u64("count")?;
    let _ = get_in(hist, "sum", key)?.as_u64("sum")?;
    let buckets = get_in(hist, "buckets", key)?.as_array("buckets")?;
    let mut total = 0u64;
    let mut last_le: Option<u64> = None;
    for bucket in buckets {
        let b = bucket.as_object("bucket")?;
        let le = get_in(b, "le", "bucket")?.as_u64("le")?;
        if last_le.is_some_and(|prev| le <= prev) {
            return Err(format!(
                "histogram {key:?}: bucket bounds not strictly increasing"
            ));
        }
        last_le = Some(le);
        total += get_in(b, "count", "bucket")?.as_u64("count")?;
    }
    if total != count {
        return Err(format!(
            "histogram {key:?}: buckets sum to {total}, count says {count}"
        ));
    }
    Ok(count)
}

/// A parsed JSON value over the subset the metrics writer emits.
/// Objects preserve key order (and duplicate detection happens at
/// parse time).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token so u64-range integers stay
    /// exact.
    Number(String),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered object.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    pub(crate) fn as_object(&self, what: &str) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(format!(
                "{what} must be an object, found {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_array(&self, what: &str) -> Result<&Vec<Json>, String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!(
                "{what} must be an array, found {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_string(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(format!(
                "{what} must be a string, found {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Number(raw) => raw.parse::<u64>().map_err(|_| {
                format!("{what} must be a non-negative integer within u64 range, found {raw}")
            }),
            other => Err(format!(
                "{what} must be a number, found {}",
                other.type_name()
            )),
        }
    }
}

/// Looks up a required top-level field.
pub(crate) fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    get_in(fields, key, "document root")
}

/// Looks up a required field inside a named object.
pub(crate) fn get_in<'a>(
    fields: &'a [(String, Json)],
    key: &str,
    within: &str,
) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{within} is missing required field {key:?}"))
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a byte-offset-tagged message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after the document"));
    }
    Ok(value)
}

/// Recursive-descent state over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> String {
        format!("byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", char::from(byte))))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.fail("expected digits"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("number is not UTF-8"))?;
        Ok(Json::Number(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        _ => return Err(self.fail("unsupported escape")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("string is not UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.fail("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    /// A minimal valid document: every required counter at zero, both
    /// required histograms empty.
    fn valid_document() -> String {
        let mut counters = String::new();
        for (i, key) in REQUIRED_COUNTERS.iter().enumerate() {
            let comma = if i + 1 < REQUIRED_COUNTERS.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(counters, "    {key:?}: 0{comma}");
        }
        format!(
            "{{\n  \"schema\": \"engine-metrics/v1\",\n  \"rng_stream_version\": 2,\n  \
             \"counters\": {{\n{counters}  }},\n  \"histograms\": {{\n    \
             \"pool.job_ns\": {{\"count\": 0, \"sum\": 0, \"buckets\": []}},\n    \
             \"sweep.point_ns\": {{\"count\": 3, \"sum\": 900, \"buckets\": \
             [{{\"le\": 255, \"count\": 1}}, {{\"le\": 511, \"count\": 2}}]}},\n    \
             \"shard.span_ns\": {{\"count\": 0, \"sum\": 0, \"buckets\": []}}\n  }}\n}}\n"
        )
    }

    #[test]
    fn valid_document_passes_and_summarizes() {
        let summary = validate_metrics_document(&valid_document()).expect("valid");
        assert_eq!(
            summary,
            MetricsSummary {
                rng_stream_version: 2,
                counters: REQUIRED_COUNTERS.len(),
                histograms: 3,
                samples: 3,
            }
        );
        assert!(summary.to_string().contains("31 counters"));
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let doc = valid_document().replace("engine-metrics/v1", "engine-metrics/v0");
        let err = validate_metrics_document(&doc).expect_err("schema mismatch");
        assert!(err.contains("engine-metrics/v1"), "{err}");
    }

    #[test]
    fn each_missing_counter_is_reported() {
        for key in REQUIRED_COUNTERS {
            let doc = valid_document().replace(&format!("{key:?}"), &format!("\"x.{key}\""));
            let err = validate_metrics_document(&doc).expect_err("missing counter");
            assert!(err.contains(key), "{key}: {err}");
        }
    }

    #[test]
    fn negative_and_fractional_counters_are_rejected() {
        let negative = valid_document().replace("\"rng.draws\": 0", "\"rng.draws\": -4");
        assert!(validate_metrics_document(&negative)
            .expect_err("negative")
            .contains("rng.draws"));
        let fractional = valid_document().replace("\"rng.draws\": 0", "\"rng.draws\": 0.5");
        assert!(validate_metrics_document(&fractional)
            .expect_err("fractional")
            .contains("rng.draws"));
    }

    #[test]
    fn bucket_sum_mismatch_is_rejected() {
        let doc =
            valid_document().replace("\"count\": 3, \"sum\": 900", "\"count\": 4, \"sum\": 900");
        let err = validate_metrics_document(&doc).expect_err("sum mismatch");
        assert!(err.contains("buckets sum to 3, count says 4"), "{err}");
    }

    #[test]
    fn unordered_bucket_bounds_are_rejected() {
        let doc =
            valid_document().replace("{\"le\": 511, \"count\": 2}", "{\"le\": 255, \"count\": 2}");
        let err = validate_metrics_document(&doc).expect_err("duplicate bound");
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn real_writer_output_validates() {
        // The committed example artifact, when present, must satisfy
        // the checker — this pins writer and checker to one schema.
        let path = crate::repo_root().join("results/engine_metrics.json");
        if let Ok(text) = std::fs::read_to_string(path) {
            let summary = validate_metrics_document(&text).expect("committed artifact");
            assert_eq!(summary.rng_stream_version, 3);
        }
    }

    #[test]
    fn parser_rejects_trailing_data_and_duplicate_keys() {
        assert!(parse_json("{} {}")
            .expect_err("trailing")
            .contains("trailing"));
        assert!(parse_json("{\"a\": 1, \"a\": 2}")
            .expect_err("dup")
            .contains("duplicate"));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn parser_handles_the_writer_grammar() {
        let v = parse_json(" {\"a\": [1, {\"b\": \"x\\ny\"}], \"c\": true, \"d\": null} ")
            .expect("valid");
        let obj = v.as_object("root").expect("object");
        assert_eq!(obj.len(), 3);
        assert_eq!(get_in(obj, "c", "root").expect("c"), &Json::Bool(true));
    }
}
