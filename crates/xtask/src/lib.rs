//! `xtask` — the workspace's dependency-free static-analysis and CI
//! driver, invoked as `cargo xtask <command>` (see `.cargo/config.toml`).
//!
//! The lints here encode *repo-specific* rules that `rustc` and
//! `clippy` cannot express — no panicking constructs in library code,
//! no ambient-entropy RNG anywhere, documented panic contracts,
//! named tolerance constants — over a scrubbed, line-oriented view of
//! the source (see [`scrub`]). Waivers are explicit and reviewed:
//! either an inline `// xtask:allow(<lint>): <reason>` comment or an
//! entry in the repo-root `xtask.allow` file; both require a reason.
//!
//! | command | effect |
//! |---|---|
//! | `cargo xtask lint` | run every lint over the workspace |
//! | `cargo xtask lint --list` | print the lint table |
//! | `cargo xtask ci` | fmt-check + lints + tier-1 tests |
//! | `cargo xtask metrics-check <path>` | validate an `engine-metrics/v1` JSON export |
//! | `cargo xtask chaos-check <path>` | validate a `chaos-smoke/v1` fault-recovery artifact |

#![forbid(unsafe_code)]

pub mod allow;
pub mod chaos;
pub mod lints;
pub mod metrics;
pub mod scrub;
pub mod source;
pub mod walk;

use allow::Allowlist;
use lints::Violation;
use source::{classify, SourceFile};
use std::fmt::Write;
use std::fs;
use std::path::Path;

/// Name of the repo-root allowlist file.
pub const ALLOWLIST_FILE: &str = "xtask.allow";

/// Lints every Rust source under `repo_root`, returning the
/// violations not covered by the allowlist.
///
/// # Errors
///
/// Returns a message on IO failure or a malformed allowlist.
pub fn lint_workspace(repo_root: &Path) -> Result<Vec<Violation>, String> {
    let allowlist = load_allowlist(repo_root)?;
    let mut violations = Vec::new();
    for (rel, abs) in walk::rust_sources(repo_root)? {
        let text = fs::read_to_string(&abs).map_err(|e| format!("read {rel}: {e}"))?;
        let file = SourceFile::parse(&rel, classify(Path::new(&rel)), &text);
        violations.extend(lints::check_file(&file));
    }
    Ok(allowlist.filter(violations))
}

/// Loads and parses the repo-root allowlist; absent file = empty list.
///
/// # Errors
///
/// Returns a message when the file exists but is malformed.
pub fn load_allowlist(repo_root: &Path) -> Result<Allowlist, String> {
    match fs::read_to_string(repo_root.join(ALLOWLIST_FILE)) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Ok(Allowlist::default()),
    }
}

/// Renders violations in `path:line: [lint] message` form, one per
/// line, ready for terminal output.
#[must_use]
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }
    out
}

/// The repo root, derived from this crate's manifest location.
#[must_use]
pub fn repo_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    root.parent().and_then(Path::parent).unwrap_or(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn render_is_one_line_per_violation() {
        let v = vec![Violation {
            lint: "no-panic",
            path: "a.rs".to_owned(),
            line: 3,
            message: "msg".to_owned(),
        }];
        assert_eq!(render(&v), "a.rs:3: [no-panic] msg\n");
    }
}
