//! `xtask` — the workspace's dependency-free static-analysis and CI
//! driver, invoked as `cargo xtask <command>` (see `.cargo/config.toml`).
//!
//! The checks here encode *repo-specific* rules that `rustc` and
//! `clippy` cannot express — no panicking constructs in library code,
//! no ambient-entropy RNG anywhere, documented panic contracts, named
//! tolerance constants, seed provenance for every RNG, lock/blocking
//! discipline, allocation-free hot paths, and a token-hash gate on
//! the RNG-stream-critical functions — over a lexed token stream and
//! item tree (see [`lexer`] and [`tree`]). Waivers are explicit and
//! reviewed: either an inline `// xtask:allow(<check>): <reason>`
//! comment or an entry in the repo-root `xtask.allow` file; both
//! require a reason, and entries that no longer waive anything are
//! themselves an error (prune with `cargo xtask lint --prune`).
//!
//! | command | effect |
//! |---|---|
//! | `cargo xtask lint` | run the nine lints over the workspace |
//! | `cargo xtask lint --list` | print the lint table |
//! | `cargo xtask lint --prune` | drop stale allowlist entries |
//! | `cargo xtask analyze` | lints + scope-aware analyses + fingerprint gate |
//! | `cargo xtask analyze --list` | print all thirteen checks |
//! | `cargo xtask analyze --json` | machine-readable checks + violations |
//! | `cargo xtask analyze --update-fingerprint` | re-attest `results/stream_fingerprint.json` |
//! | `cargo xtask ci` | fmt-check + analyze + tier-1 tests |
//! | `cargo xtask metrics-check <path>` | validate an `engine-metrics/v1` JSON export |
//! | `cargo xtask chaos-check <path>` | validate a `chaos-smoke/v1` fault-recovery artifact |
//! | `cargo xtask shard-check <path>` | validate a `shard-smoke/v1` orchestration artifact |
//! | `cargo xtask bench-check <fresh> <committed>` | gate fresh bench speedups against `results/BENCH_*.json` |
//! | `cargo xtask table [--max-n N] [--out path]` | certify and write `results/threshold_table.json` |
//! | `cargo xtask table-check [path]` | validate the committed threshold table + spot re-certify rows |

#![forbid(unsafe_code)]

pub mod allow;
pub mod analyses;
pub mod bench_check;
pub mod chaos;
pub mod fingerprint;
pub mod lexer;
pub mod lints;
pub mod metrics;
pub mod scrub;
pub mod shard;
pub mod source;
pub mod table;
pub mod tree;
pub mod walk;

use allow::Allowlist;
use lints::Violation;
use source::{classify, SourceFile};
use std::fmt::Write;
use std::fs;
use std::path::Path;

/// Name of the repo-root allowlist file.
pub const ALLOWLIST_FILE: &str = "xtask.allow";

/// Outcome of a workspace check run: what survived the allowlist, and
/// which allowlist entries waived nothing that the executed checks
/// produced.
pub struct CheckReport {
    /// Violations not covered by any waiver.
    pub violations: Vec<Violation>,
    /// Allowlist entries (within the executed checks' scope) that
    /// covered no violation.
    pub stale: Vec<allow::AllowEntry>,
}

/// Parses every Rust source under `repo_root` into [`SourceFile`]s.
///
/// # Errors
///
/// Returns a message on IO failure.
pub fn parse_workspace(repo_root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for (rel, abs) in walk::rust_sources(repo_root)? {
        let text = fs::read_to_string(&abs).map_err(|e| format!("read {rel}: {e}"))?;
        files.push(SourceFile::parse(&rel, classify(Path::new(&rel)), &text));
    }
    Ok(files)
}

/// Lints every Rust source under `repo_root`: the nine lint rules
/// only, staleness judged against lint-id entries only.
///
/// # Errors
///
/// Returns a message on IO failure or a malformed allowlist.
pub fn lint_workspace(repo_root: &Path) -> Result<CheckReport, String> {
    let allowlist = load_allowlist(repo_root)?;
    let mut raw = Vec::new();
    for file in parse_workspace(repo_root)? {
        raw.extend(lints::check_file(&file));
    }
    let scope: Vec<&str> = lints::LINTS.iter().map(|l| l.id).collect();
    let stale = allowlist
        .stale_entries(&raw, &scope)
        .into_iter()
        .cloned()
        .collect();
    Ok(CheckReport {
        violations: allowlist.filter(raw),
        stale,
    })
}

/// Runs the full analyzer: the nine lints, the three scope-aware
/// analyses, and the stream-fingerprint gate; staleness judged
/// against all thirteen check ids.
///
/// # Errors
///
/// Returns a message on IO failure or a malformed allowlist.
pub fn analyze_workspace(repo_root: &Path) -> Result<CheckReport, String> {
    let allowlist = load_allowlist(repo_root)?;
    let files = parse_workspace(repo_root)?;
    let mut raw = Vec::new();
    for file in &files {
        raw.extend(lints::check_file(file));
        raw.extend(analyses::check_file(file));
    }
    let committed = fs::read_to_string(repo_root.join(fingerprint::FINGERPRINT_FILE)).ok();
    raw.extend(fingerprint::check(
        fingerprint::CRITICAL_FNS,
        &files,
        committed.as_deref(),
    ));
    let stale = allowlist
        .stale_entries(&raw, &allow::known_ids())
        .into_iter()
        .cloned()
        .collect();
    Ok(CheckReport {
        violations: allowlist.filter(raw),
        stale,
    })
}

/// Regenerates `results/stream_fingerprint.json` from the current
/// sources, returning its repo-relative path.
///
/// # Errors
///
/// Returns a message on IO failure or when a critical fn is missing
/// (an incomplete attestation must not be written).
pub fn update_fingerprint(repo_root: &Path) -> Result<String, String> {
    let files = parse_workspace(repo_root)?;
    let (fp, violations) = fingerprint::compute(fingerprint::CRITICAL_FNS, &files);
    if !violations.is_empty() {
        return Err(format!(
            "cannot attest an incomplete fingerprint:\n{}",
            render(&violations)
        ));
    }
    let path = repo_root.join(fingerprint::FINGERPRINT_FILE);
    fs::write(&path, fp.render()).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(fingerprint::FINGERPRINT_FILE.to_owned())
}

/// Rewrites `xtask.allow` without its stale entries (matched by check
/// id and path fragment), preserving comments and blank lines.
/// Returns how many entries were dropped.
///
/// # Errors
///
/// Returns a message on IO failure.
pub fn prune_allowlist(repo_root: &Path, stale: &[allow::AllowEntry]) -> Result<usize, String> {
    let path = repo_root.join(ALLOWLIST_FILE);
    let text = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut kept = String::new();
    let mut dropped = 0usize;
    for raw in text.lines() {
        let line = raw.trim();
        let is_stale = stale.iter().any(|e| {
            let mut parts = line.splitn(3, char::is_whitespace);
            parts.next() == Some(e.lint.as_str()) && parts.next() == Some(e.path_fragment.as_str())
        });
        if is_stale && !line.is_empty() && !line.starts_with('#') {
            dropped += 1;
        } else {
            kept.push_str(raw);
            kept.push('\n');
        }
    }
    fs::write(&path, kept).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(dropped)
}

/// Renders stale allowlist entries as error lines with the prune hint.
#[must_use]
pub fn render_stale(stale: &[allow::AllowEntry]) -> String {
    let mut out = String::new();
    for e in stale {
        let _ = writeln!(
            out,
            "{}: stale waiver: `{} {}` no longer matches any violation \
             (run `cargo xtask lint --prune` to remove)",
            ALLOWLIST_FILE, e.lint, e.path_fragment
        );
    }
    out
}

/// Loads and parses the repo-root allowlist; absent file = empty list.
///
/// # Errors
///
/// Returns a message when the file exists but is malformed.
pub fn load_allowlist(repo_root: &Path) -> Result<Allowlist, String> {
    match fs::read_to_string(repo_root.join(ALLOWLIST_FILE)) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Ok(Allowlist::default()),
    }
}

/// Renders violations in `path:line: [lint] message` form, one per
/// line, ready for terminal output.
#[must_use]
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
    }
    out
}

/// The repo root, derived from this crate's manifest location.
#[must_use]
pub fn repo_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    root.parent().and_then(Path::parent).unwrap_or(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn render_is_one_line_per_violation() {
        let v = vec![Violation {
            lint: "no-panic",
            path: "a.rs".to_owned(),
            line: 3,
            message: "msg".to_owned(),
        }];
        assert_eq!(render(&v), "a.rs:3: [no-panic] msg\n");
    }
}
