//! `cargo xtask shard-check <path>` — validator for the
//! `shard-smoke/v1` JSON documents written by `nocomm-shard --smoke`.
//!
//! The artifact is the committed proof that multi-process sweep
//! orchestration survives real process faults: the fault-free leg
//! must merge **byte-identically** to the single-process baseline
//! without a single re-issue, and the chaotic leg (one killed worker,
//! one stalled worker, one corrupt-output worker) must show every
//! fault fired — a kill observed, a corrupt checkpoint scrubbed, all
//! three shards re-issued — and *still* merge byte-identically. CI
//! regenerates the artifact and runs this check, so a regression in
//! the supervision layer, or a smoke config that stops injecting
//! faults, fails the pipeline instead of rotting in `results/`.

use crate::metrics::{get, get_in, parse_json, Json};

/// What a valid `shard-smoke/v1` document proved, for the success
/// report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSummary {
    /// Value of the `rng_stream_version` field.
    pub rng_stream_version: u64,
    /// Worker processes the grid was split across.
    pub shards: u64,
    /// Grid resolution of the orchestrated sweep.
    pub grid: u64,
    /// Monte-Carlo trials per grid point.
    pub trials: u64,
    /// Shards re-issued after a fault (`chaotic.reissued`).
    pub reissued: u64,
    /// Workers killed by the supervisor (`chaotic.killed`).
    pub killed: u64,
    /// Corrupt shard checkpoints scrubbed (`chaotic.corrupt`).
    pub corrupt: u64,
}

impl std::fmt::Display for ShardSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard-smoke/v1 (rng stream v{}): {} shards over grid {} x {} trials merged \
             byte-identically under faults; {} re-issued, {} killed, {} corrupt scrubbed",
            self.rng_stream_version,
            self.shards,
            self.grid,
            self.trials,
            self.reissued,
            self.killed,
            self.corrupt
        )
    }
}

/// One leg's supervision ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Leg {
    bit_identical: bool,
    issued: u64,
    completed: u64,
    reissued: u64,
    killed: u64,
    corrupt: u64,
}

/// Validates the text of a `shard-smoke/v1` document.
///
/// # Errors
///
/// Returns a description of the first problem: malformed JSON, wrong
/// schema tag, a missing field, a leg that did not merge
/// byte-identically to the single-process baseline, a fault-free leg
/// whose ledger shows supervision interference (re-issues, kills, or
/// scrubs with no faults injected), a chaotic leg whose ledger shows
/// the plan never engaged, or a ledger that does not balance
/// (`issued != completed` on a converged run, or
/// `issued != shards + reissued`).
pub fn validate_shard_document(text: &str) -> Result<ShardSummary, String> {
    let root = parse_json(text)?;
    let doc = root.as_object("document root")?;

    let schema = get(doc, "schema")?.as_string("schema")?;
    if schema != "shard-smoke/v1" {
        return Err(format!("schema is {schema:?}, expected \"shard-smoke/v1\""));
    }
    let rng_stream_version = get(doc, "rng_stream_version")?.as_u64("rng_stream_version")?;
    if rng_stream_version == 0 {
        return Err("rng_stream_version must be at least 1".to_owned());
    }
    let shards = get(doc, "shards")?.as_u64("shards")?;
    let grid = get(doc, "grid")?.as_u64("grid")?;
    let trials = get(doc, "trials")?.as_u64("trials")?;
    if shards < 2 {
        return Err(format!(
            "shards is {shards} — a smoke with fewer than 2 shards proves nothing about \
             orchestration"
        ));
    }
    if shards > grid + 1 {
        return Err(format!(
            "shards {shards} exceed the {} grid points",
            grid + 1
        ));
    }
    if trials == 0 {
        return Err("trials must be positive".to_owned());
    }

    let fault_free = leg(get(doc, "fault_free")?, "fault_free")?;
    let chaotic = leg(get(doc, "chaotic")?, "chaotic")?;
    for (name, l) in [("fault_free", fault_free), ("chaotic", chaotic)] {
        if !l.bit_identical {
            return Err(format!(
                "{name}: merged checkpoint is not byte-identical to the single-process \
                 baseline — the orchestrator broke determinism"
            ));
        }
        if l.completed != shards {
            return Err(format!(
                "{name}: {} shards completed, expected all {shards}",
                l.completed
            ));
        }
        if l.issued != shards + l.reissued {
            return Err(format!(
                "{name}: ledger does not balance — {} issued != {shards} shards + {} re-issued",
                l.issued, l.reissued
            ));
        }
    }
    if fault_free.reissued != 0 || fault_free.killed != 0 || fault_free.corrupt != 0 {
        return Err(format!(
            "fault_free: supervision interfered with a healthy run ({} re-issued, {} killed, \
             {} corrupt)",
            fault_free.reissued, fault_free.killed, fault_free.corrupt
        ));
    }
    if chaotic.killed == 0 {
        return Err(
            "chaotic: killed is 0 — no worker was ever killed, the kill/stall faults \
             never engaged"
                .to_owned(),
        );
    }
    if chaotic.corrupt == 0 {
        return Err("chaotic: corrupt is 0 — no corrupt checkpoint was ever scrubbed".to_owned());
    }
    if chaotic.reissued < shards {
        return Err(format!(
            "chaotic: only {} shards re-issued — the plan must fault every one of the \
             {shards} shards once",
            chaotic.reissued
        ));
    }

    Ok(ShardSummary {
        rng_stream_version,
        shards,
        grid,
        trials,
        reissued: chaotic.reissued,
        killed: chaotic.killed,
        corrupt: chaotic.corrupt,
    })
}

/// Reads one leg's ledger object.
fn leg(value: &Json, what: &str) -> Result<Leg, String> {
    let fields = value.as_object(what)?;
    let bit_identical = match get_in(fields, "bit_identical", what)? {
        Json::Bool(b) => *b,
        other => {
            return Err(format!(
                "{what}.bit_identical must be a bool, found {}",
                other.type_name()
            ))
        }
    };
    Ok(Leg {
        bit_identical,
        issued: get_in(fields, "issued", what)?.as_u64("issued")?,
        completed: get_in(fields, "completed", what)?.as_u64("completed")?,
        reissued: get_in(fields, "reissued", what)?.as_u64("reissued")?,
        killed: get_in(fields, "killed", what)?.as_u64("killed")?,
        corrupt: get_in(fields, "corrupt", what)?.as_u64("corrupt")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_document() -> String {
        "{\"schema\": \"shard-smoke/v1\", \"rng_stream_version\": 3, \
         \"n\": 3, \"grid\": 5, \"shards\": 3, \"trials\": 2000, \
         \"fault_free\": {\"bit_identical\": true, \"issued\": 3, \"completed\": 3, \
         \"reissued\": 0, \"killed\": 0, \"corrupt\": 0}, \
         \"chaotic\": {\"bit_identical\": true, \"issued\": 6, \"completed\": 3, \
         \"reissued\": 3, \"killed\": 1, \"corrupt\": 1}}\n"
            .to_owned()
    }

    #[test]
    fn valid_document_passes_and_summarizes() {
        let summary = validate_shard_document(&valid_document()).expect("valid");
        assert_eq!(
            summary,
            ShardSummary {
                rng_stream_version: 3,
                shards: 3,
                grid: 5,
                trials: 2_000,
                reissued: 3,
                killed: 1,
                corrupt: 1,
            }
        );
        let line = summary.to_string();
        assert!(line.contains("byte-identically"), "{line}");
        assert!(line.contains("3 re-issued"), "{line}");
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let doc = valid_document().replace("shard-smoke/v1", "shard-smoke/v0");
        let err = validate_shard_document(&doc).expect_err("schema mismatch");
        assert!(err.contains("shard-smoke/v1"), "{err}");
    }

    #[test]
    fn divergent_merges_are_rejected_per_leg() {
        let free = valid_document().replace(
            "\"fault_free\": {\"bit_identical\": true",
            "\"fault_free\": {\"bit_identical\": false",
        );
        let err = validate_shard_document(&free).expect_err("fault-free divergence");
        assert!(
            err.contains("fault_free") && err.contains("byte-identical"),
            "{err}"
        );
        let chaos = valid_document().replace(
            "\"chaotic\": {\"bit_identical\": true",
            "\"chaotic\": {\"bit_identical\": false",
        );
        let err = validate_shard_document(&chaos).expect_err("chaotic divergence");
        assert!(
            err.contains("chaotic") && err.contains("byte-identical"),
            "{err}"
        );
    }

    #[test]
    fn interference_with_a_healthy_run_is_rejected() {
        let doc = valid_document().replace(
            "\"issued\": 3, \"completed\": 3, \"reissued\": 0",
            "\"issued\": 4, \"completed\": 3, \"reissued\": 1",
        );
        let err = validate_shard_document(&doc).expect_err("spurious re-issue");
        assert!(err.contains("interfered"), "{err}");
    }

    #[test]
    fn unengaged_chaos_is_rejected() {
        let no_kills = valid_document().replace(
            "\"killed\": 1, \"corrupt\": 1",
            "\"killed\": 0, \"corrupt\": 1",
        );
        assert!(validate_shard_document(&no_kills)
            .expect_err("no kills")
            .contains("never engaged"));
        let no_scrubs = valid_document().replace(
            "\"killed\": 1, \"corrupt\": 1",
            "\"killed\": 1, \"corrupt\": 0",
        );
        assert!(validate_shard_document(&no_scrubs)
            .expect_err("no scrubs")
            .contains("scrubbed"));
        let few_reissues = valid_document().replace(
            "\"issued\": 6, \"completed\": 3, \"reissued\": 3",
            "\"issued\": 5, \"completed\": 3, \"reissued\": 2",
        );
        assert!(validate_shard_document(&few_reissues)
            .expect_err("too few re-issues")
            .contains("re-issued"));
    }

    #[test]
    fn unbalanced_ledgers_are_rejected() {
        let doc = valid_document().replace(
            "\"issued\": 6, \"completed\": 3, \"reissued\": 3",
            "\"issued\": 7, \"completed\": 3, \"reissued\": 3",
        );
        let err = validate_shard_document(&doc).expect_err("imbalance");
        assert!(err.contains("does not balance"), "{err}");
        let short = valid_document().replace(
            "\"issued\": 6, \"completed\": 3",
            "\"issued\": 6, \"completed\": 2",
        );
        let err = validate_shard_document(&short).expect_err("incomplete");
        assert!(err.contains("expected all 3"), "{err}");
    }

    #[test]
    fn degenerate_smoke_configs_are_rejected() {
        let one_shard = valid_document().replace("\"shards\": 3", "\"shards\": 1");
        assert!(validate_shard_document(&one_shard)
            .expect_err("one shard")
            .contains("proves nothing"));
        let missing = valid_document().replace(
            "\"killed\": 1, \"corrupt\": 1",
            "\"killed\": 1, \"other\": 1",
        );
        assert!(validate_shard_document(&missing)
            .expect_err("missing field")
            .contains("corrupt"));
    }

    #[test]
    fn committed_artifact_validates() {
        // The committed smoke artifact, when present, must satisfy the
        // checker — this pins the smoke writer and checker together.
        let path = crate::repo_root().join("results/shard_smoke.json");
        if let Ok(text) = std::fs::read_to_string(path) {
            let summary = validate_shard_document(&text).expect("committed artifact");
            assert_eq!(summary.rng_stream_version, 3);
            assert!(summary.reissued >= summary.shards);
        }
    }
}
