//! Lexical scrubbing: blanking comments and string literals so the
//! line-based lints never fire on prose.
//!
//! The scrubber is a small hand-rolled scanner, not a parser: it
//! tracks just enough Rust lexical structure — line comments, nested
//! block comments, string/char/raw-string literals — to replace their
//! *contents* with spaces while preserving line and column positions,
//! so every downstream lint can report accurate locations against the
//! original text.

/// Result of scrubbing one source file.
#[derive(Clone, Debug)]
pub struct Scrubbed {
    /// The source with comment and string contents blanked to spaces;
    /// newlines are preserved, so line/column offsets match the
    /// original.
    pub code: String,
    /// For each (1-based) line, the comment text found on it (with
    /// the `//` markers removed), used for inline-allow parsing.
    pub comments: Vec<String>,
}

/// Scrubs `source`, blanking comments and literal contents.
///
/// Doc comments are treated like any other comment: their text is
/// collected per line (for `# Panics` detection and inline allows)
/// and blanked in the code stream.
#[must_use]
// The `keep!` macro pushes a fresh per-line comment buffer on every
// newline; clippy's same-item-push heuristic misreads that as a
// repeated-element push.
#[allow(clippy::too_many_lines, clippy::same_item_push)]
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut i = 0usize;

    // Appends a byte to the scrubbed stream, tracking line breaks.
    macro_rules! keep {
        ($b:expr) => {{
            let b: u8 = $b;
            code.push(b);
            if b == b'\n' {
                line += 1;
                comments.push(String::new());
            }
        }};
    }
    // Blanks a byte: newlines survive, everything else becomes space.
    macro_rules! blank {
        ($b:expr) => {{
            let b: u8 = $b;
            if b == b'\n' {
                keep!(b'\n');
            } else {
                code.push(b' ');
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match b {
            b'/' if next == Some(b'/') => {
                // Line comment (incl. doc comments): record its text.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank!(bytes[i]);
                    i += 1;
                }
                // Keep the `//`/`///` markers: a blank doc line is
                // still a (non-empty) comment, unlike a blank line.
                comments[line].push_str(&source[start..i]);
            }
            b'/' if next == Some(b'*') => {
                // Block comment, possibly nested.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank!(b'/');
                        blank!(b'*');
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank!(b'*');
                        blank!(b'/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank!(bytes[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Ordinary string literal: keep the quotes, blank the
                // contents, honour escapes.
                keep!(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            blank!(b'\\');
                            if i + 1 < bytes.len() {
                                blank!(bytes[i + 1]);
                            }
                            i += 2;
                        }
                        b'"' => {
                            keep!(b'"');
                            i += 1;
                            break;
                        }
                        other => {
                            blank!(other);
                            i += 1;
                        }
                    }
                }
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                // Raw (r"…", r#"…"#) and byte-prefixed (b"…", br#"…"#)
                // string literals. The byte prefix matters: `br#"…"#`
                // contents are *raw* — handing them to the escape-aware
                // ordinary-string scan below would let a trailing `\`
                // swallow the closing quote and blank real code.
                let start = i;
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                let is_raw = bytes.get(j) == Some(&b'r');
                if is_raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if is_raw && bytes.get(j) == Some(&b'"') {
                    for &p in &bytes[start..=j] {
                        keep!(p);
                    }
                    j += 1;
                    'raw: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                keep!(b'"');
                                for _ in 0..hashes {
                                    keep!(b'#');
                                }
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        blank!(bytes[j]);
                        j += 1;
                    }
                    i = j;
                } else {
                    // Not a raw string: `r#ident`, a plain identifier
                    // starting with `r`/`b`, or a `b"…"`/`b'…'` prefix
                    // whose literal the next iteration scans normally
                    // (byte-string escapes follow ordinary-string
                    // rules, so the `"` arm is exactly right for them).
                    keep!(bytes[start]);
                    i = start + 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime has no closing
                // quote right after its identifier.
                if let Some(end) = char_literal_end(bytes, i) {
                    keep!(b'\'');
                    for &inner in &bytes[i + 1..end] {
                        blank!(inner);
                    }
                    keep!(b'\'');
                    i = end + 1;
                } else {
                    keep!(b'\'');
                    i += 1;
                }
            }
            other => {
                keep!(other);
                i += 1;
            }
        }
    }

    Scrubbed {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments,
    }
}

/// `true` when the byte before `i` can end an identifier, meaning an
/// `r` at `i` is part of a name like `for` rather than a raw-string
/// prefix.
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// If a char literal starts at `i` (a `'`), returns the index of its
/// closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        // Escaped char: skip the backslash and the escape head, then
        // scan to the closing quote (covers \u{...} forms).
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j);
    }
    // Unescaped: exactly one char (1–4 bytes, length from the UTF-8
    // leading byte) then the closing quote. Scanning for "a quote
    // within 4 bytes" instead would misread `<'a, 'b>` — a quote at
    // distance 3 — as the char literal `'a, '`.
    let first = *bytes.get(j)?;
    if first == b'\'' || first == b'\n' {
        return None;
    }
    let k = j + utf8_len(first);
    (bytes.get(k) == Some(&b'\'')).then_some(k)
}

/// Byte length of a UTF-8 scalar from its leading byte.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0xf0..=0xf7 => 4,
        0xe0..=0xef => 3,
        0xc0..=0xdf => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let s = scrub("let x = 1; // trailing note\n");
        assert_eq!(s.code.lines().next().unwrap().trim_end(), "let x = 1;");
        assert!(s.comments[0].contains("trailing note"));
    }

    #[test]
    fn doc_comments_are_collected() {
        let s = scrub("/// # Panics\n///\n/// Panics always.\nfn f() {}\n");
        assert!(s.comments[0].contains("# Panics"));
        assert!(s.code.contains("fn f() {}"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scrub("let m = \"panic! inside string\";\n");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let m = \""));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scrub("let m = r#\"unwrap() here\"#;\n");
        assert!(!s.code.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let s = scrub("/* outer /* inner */ still */ let y = 2;\n");
        assert!(s.code.contains("let y = 2;"));
        assert!(!s.code.contains("outer"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(s.code.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let s = scrub("let c = '\"'; let d = '\\n'; let e = 'x';\n");
        assert!(!s.code.contains('x') || s.code.contains("let e = '"));
        assert!(s.code.matches('\'').count() >= 6);
    }

    #[test]
    fn line_count_is_preserved() {
        let src = "a\n/* b\nc */\nd \"e\nf\"\n";
        assert_eq!(scrub(src).code.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_byte_strings_are_raw_not_escaped() {
        // Regression: `br#"…"#` used to fall into the escape-aware
        // ordinary-string scan, so a trailing backslash swallowed the
        // closing quote and the scrubber blanked the following code.
        let s = scrub("let m = br#\"trailing slash \\\"#; let live = 1;\n");
        assert!(
            s.code.contains("let live = 1;"),
            "code after the literal survives"
        );
        assert!(!s.code.contains("trailing"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_blanked() {
        let s = scrub("let m = b\"panic! bytes\"; let c = b'x';\n");
        assert!(!s.code.contains("panic!"));
        assert!(s.code.contains("let m = b\""));
        assert!(s.code.contains("let c = b'"));
    }

    #[test]
    fn identifiers_starting_with_b_or_r_survive() {
        let s = scrub("let b = 1; let r = b + before(r);\n");
        assert_eq!(s.code.trim_end(), "let b = 1; let r = b + before(r);");
    }

    #[test]
    fn adjacent_lifetimes_are_not_a_char_literal() {
        // Regression: the quote of `'b` sits 3 bytes after `'a`, which
        // the old ≤4-byte scan misread as the char literal `'a, '`.
        let s = scrub("fn f<'a, 'b>(x: &'a str, y: &'b str) {}\n");
        assert!(s.code.contains("<'a, 'b>"));
    }

    #[test]
    fn four_byte_char_literals_are_blanked() {
        // Regression: a 4-byte scalar puts the closing quote at offset
        // 4, one past the old scan bound, so `'😀'` leaked through as
        // a "lifetime".
        let s = scrub("let c = '😀'; let d = 1;\n");
        assert!(!s.code.contains('😀'));
        assert!(s.code.contains("let d = 1;"));
    }

    #[test]
    fn scrub_and_lexer_agree_on_what_is_comment_or_literal() {
        // Differential oracle: bytes the scrubber keeps verbatim must
        // lie outside the lexer's comment/string/char tokens, and
        // blanked bytes inside them — the two scanners implement the
        // same lexical grammar independently.
        let src = "fn f<'a>(x: &'a str) -> u8 { /* s /* t */ u */ \"q\\\"p\" ; b'\\n' ; r#\"w \" w\"# ; br\"v\" ; '\u{1F600}' ; 0x2e }\n";
        let s = scrub(src);
        let tokens = crate::lexer::lex(src);
        let mut opaque = vec![false; src.len()];
        for t in &tokens {
            use crate::lexer::TokenKind;
            if matches!(
                t.kind,
                TokenKind::LineComment(_)
                    | TokenKind::BlockComment(_)
                    | TokenKind::Str
                    | TokenKind::RawStr
                    | TokenKind::Char
            ) {
                for slot in &mut opaque[t.start..t.end] {
                    *slot = true;
                }
            }
        }
        for (idx, (orig, kept)) in src.bytes().zip(s.code.bytes()).enumerate() {
            if orig == b'\n' || orig == b' ' {
                continue;
            }
            if !opaque[idx] {
                assert_eq!(
                    kept, orig,
                    "byte {idx} ({:?}) outside literals must survive",
                    orig as char
                );
            }
        }
    }
}
