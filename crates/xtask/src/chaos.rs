//! `cargo xtask chaos-check <path>` — validator for the
//! `chaos-smoke/v1` JSON documents written by the `chaos_smoke`
//! example.
//!
//! The artifact is the committed proof that the engine's fault
//! tolerance actually engaged and actually recovered: a run under a
//! seeded `ChaosPlan` (worker panics, stragglers, poisoned RNG
//! refills, worker-thread deaths) must report **bit-equal** totals to
//! the fault-free run at the same parameters, and the recovery
//! counters must show the faults fired rather than the plan being a
//! no-op. CI regenerates the artifact and runs this check, so a
//! regression in the recovery layer — or a smoke config that stops
//! injecting anything — fails the pipeline instead of rotting in
//! `results/`.

use crate::metrics::{get, get_in, parse_json, Json};

/// What a valid `chaos-smoke/v1` document proved, for the success
/// report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Value of the `rng_stream_version` field.
    pub rng_stream_version: u64,
    /// Shared win count of the chaotic and fault-free runs.
    pub wins: u64,
    /// Shared trial count of the chaotic and fault-free runs.
    pub trials: u64,
    /// Faults the plan injected (`chaos.faults`).
    pub faults: u64,
    /// Batches re-executed after a fault (`engine.recovered_batches`).
    pub recovered_batches: u64,
    /// Workers respawned by the supervisor (`pool.respawns`).
    pub pool_respawns: u64,
}

impl std::fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos-smoke/v1 (rng stream v{}): {}/{} wins bit-equal under faults; \
             {} faults injected, {} batches recovered, {} workers respawned",
            self.rng_stream_version,
            self.wins,
            self.trials,
            self.faults,
            self.recovered_batches,
            self.pool_respawns
        )
    }
}

/// Validates the text of a `chaos-smoke/v1` document.
///
/// # Errors
///
/// Returns a description of the first problem: malformed JSON, wrong
/// schema tag, a missing field, a chaotic report that is not bit-equal
/// to the fault-free report, or recovery counters showing the plan
/// never engaged (zero faults or zero recovered batches).
pub fn validate_chaos_document(text: &str) -> Result<ChaosSummary, String> {
    let root = parse_json(text)?;
    let doc = root.as_object("document root")?;

    let schema = get(doc, "schema")?.as_string("schema")?;
    if schema != "chaos-smoke/v1" {
        return Err(format!("schema is {schema:?}, expected \"chaos-smoke/v1\""));
    }
    let rng_stream_version = get(doc, "rng_stream_version")?.as_u64("rng_stream_version")?;
    if rng_stream_version == 0 {
        return Err("rng_stream_version must be at least 1".to_owned());
    }

    let fault_free = report(get(doc, "fault_free")?, "fault_free")?;
    let chaotic = report(get(doc, "chaotic")?, "chaotic")?;
    if chaotic != fault_free {
        return Err(format!(
            "chaotic report {{wins: {}, trials: {}}} is not bit-equal to fault-free \
             {{wins: {}, trials: {}}} — recovery broke determinism",
            chaotic.0, chaotic.1, fault_free.0, fault_free.1
        ));
    }

    let recoveries = get(doc, "recoveries")?.as_object("recoveries")?;
    let faults = get_in(recoveries, "chaos_faults", "recoveries")?.as_u64("chaos_faults")?;
    let recovered =
        get_in(recoveries, "recovered_batches", "recoveries")?.as_u64("recovered_batches")?;
    let respawns = get_in(recoveries, "pool_respawns", "recoveries")?.as_u64("pool_respawns")?;
    if faults == 0 {
        return Err("chaos_faults is 0 — the smoke run injected nothing".to_owned());
    }
    if recovered == 0 {
        return Err("recovered_batches is 0 — no recovery path was exercised".to_owned());
    }

    Ok(ChaosSummary {
        rng_stream_version,
        wins: fault_free.0,
        trials: fault_free.1,
        faults,
        recovered_batches: recovered,
        pool_respawns: respawns,
    })
}

/// Reads one `{"wins": …, "trials": …}` report object.
fn report(value: &Json, what: &str) -> Result<(u64, u64), String> {
    let fields = value.as_object(what)?;
    let wins = get_in(fields, "wins", what)?.as_u64("wins")?;
    let trials = get_in(fields, "trials", what)?.as_u64("trials")?;
    if wins > trials {
        return Err(format!("{what}: wins {wins} exceed trials {trials}"));
    }
    if trials == 0 {
        return Err(format!("{what}: trials must be positive"));
    }
    Ok((wins, trials))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_document() -> String {
        "{\n  \"schema\": \"chaos-smoke/v1\",\n  \"rng_stream_version\": 2,\n  \
         \"seed\": 7,\n  \
         \"fault_free\": {\"wins\": 25000, \"trials\": 60000},\n  \
         \"chaotic\": {\"wins\": 25000, \"trials\": 60000},\n  \
         \"recoveries\": {\"chaos_faults\": 6, \"recovered_batches\": 5, \
         \"pool_respawns\": 1}\n}\n"
            .to_owned()
    }

    #[test]
    fn valid_document_passes_and_summarizes() {
        let summary = validate_chaos_document(&valid_document()).expect("valid");
        assert_eq!(
            summary,
            ChaosSummary {
                rng_stream_version: 2,
                wins: 25_000,
                trials: 60_000,
                faults: 6,
                recovered_batches: 5,
                pool_respawns: 1,
            }
        );
        let line = summary.to_string();
        assert!(line.contains("bit-equal"), "{line}");
        assert!(line.contains("6 faults"), "{line}");
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let doc = valid_document().replace("chaos-smoke/v1", "chaos-smoke/v0");
        let err = validate_chaos_document(&doc).expect_err("schema mismatch");
        assert!(err.contains("chaos-smoke/v1"), "{err}");
    }

    #[test]
    fn divergent_reports_are_rejected() {
        let doc = valid_document().replace(
            "\"chaotic\": {\"wins\": 25000",
            "\"chaotic\": {\"wins\": 25001",
        );
        let err = validate_chaos_document(&doc).expect_err("divergence");
        assert!(err.contains("not bit-equal"), "{err}");
    }

    #[test]
    fn unengaged_chaos_is_rejected() {
        let no_faults = valid_document().replace("\"chaos_faults\": 6", "\"chaos_faults\": 0");
        assert!(validate_chaos_document(&no_faults)
            .expect_err("no faults")
            .contains("injected nothing"));
        let no_recovery =
            valid_document().replace("\"recovered_batches\": 5", "\"recovered_batches\": 0");
        assert!(validate_chaos_document(&no_recovery)
            .expect_err("no recovery")
            .contains("no recovery path"));
    }

    #[test]
    fn malformed_reports_are_rejected() {
        let over = valid_document().replace(
            "\"fault_free\": {\"wins\": 25000, \"trials\": 60000}",
            "\"fault_free\": {\"wins\": 70000, \"trials\": 60000}",
        );
        assert!(validate_chaos_document(&over)
            .expect_err("wins > trials")
            .contains("exceed"));
        let missing = valid_document().replace("\"pool_respawns\": 1", "\"other\": 1");
        assert!(validate_chaos_document(&missing)
            .expect_err("missing field")
            .contains("pool_respawns"));
    }

    #[test]
    fn committed_artifact_validates() {
        // The committed smoke artifact, when present, must satisfy the
        // checker — this pins the example writer and checker together.
        let path = crate::repo_root().join("results/chaos_smoke.json");
        if let Ok(text) = std::fs::read_to_string(path) {
            let summary = validate_chaos_document(&text).expect("committed artifact");
            assert_eq!(summary.rng_stream_version, 3);
            assert!(summary.recovered_batches > 0);
        }
    }
}
