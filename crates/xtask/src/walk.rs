//! Workspace discovery: which `.rs` files get linted.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories (repo-relative prefixes) that are never linted.
/// `tests/fixtures` holds deliberate violations for the lint tests.
const SKIP_FRAGMENTS: &[&str] = &["target/", "tests/fixtures/", ".git/"];

/// Collects every Rust source file under the repo root, sorted, as
/// `(repo-relative path with / separators, absolute path)`.
///
/// # Errors
///
/// Returns an IO error message if a directory cannot be read.
pub fn rust_sources(repo_root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut found = Vec::new();
    let mut stack = vec![repo_root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let rel = relative(repo_root, &path);
            if SKIP_FRAGMENTS.iter().any(|s| rel.contains(s)) || rel.starts_with('.') {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if std::path::Path::new(&rel).extension() == Some(std::ffi::OsStr::new("rs")) {
                found.push((rel, path));
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Repo-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let files = rust_sources(&root).unwrap();
        assert!(files
            .iter()
            .any(|(rel, _)| rel == "crates/xtask/src/walk.rs"));
        assert!(files
            .iter()
            .all(|(rel, _)| !rel.contains("tests/fixtures/")));
        assert!(files.iter().all(|(rel, _)| !rel.starts_with("target/")));
    }
}
