//! Service-level observability: request counters layered over the
//! engine's [`EngineMetrics`].
//!
//! One [`ServiceMetrics`] registry is shared by every connection
//! thread. The request-facing subset is frozen into a
//! [`MetricsFrame`] per response (responses carry their own
//! telemetry, `engine-metrics/v1` style), and the full engine
//! snapshot stays available for the benchmark documents.

use crate::query::MetricsFrame;
use obs::{Histogram, HistogramSnapshot};
use simulator::{EngineMetrics, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared service counters plus the engine registry the daemon's
/// [`Simulation`](simulator::Simulation) reports into.
#[derive(Debug)]
pub struct ServiceMetrics {
    requests: AtomicU64,
    inflight: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    request_ns: Histogram,
    engine: Arc<EngineMetrics>,
    batch_size: u64,
}

impl ServiceMetrics {
    /// An all-zero registry; `batch_size` is the engine's
    /// trials-per-batch granularity, reported verbatim in every
    /// frame.
    #[must_use]
    pub fn new(batch_size: u64) -> ServiceMetrics {
        ServiceMetrics {
            requests: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            request_ns: Histogram::new(),
            engine: Arc::new(EngineMetrics::new()),
            batch_size,
        }
    }

    /// The engine registry, for
    /// [`Simulation::with_metrics`](simulator::Simulation::with_metrics).
    #[must_use]
    pub fn engine(&self) -> Arc<EngineMetrics> {
        self.engine.clone()
    }

    /// Marks a request accepted; the returned guard keeps the
    /// in-flight gauge raised until dropped, on every exit path.
    #[must_use]
    pub fn begin_request(&self) -> InflightGuard<'_> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { owner: self }
    }

    /// Records a cache disposition.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one request's wall-clock service time.
    pub fn record_request_ns(&self, nanos: u64) {
        self.request_ns.record(nanos);
    }

    /// The request-facing counter frame carried by every response.
    #[must_use]
    pub fn frame(&self) -> MetricsFrame {
        let engine = self.engine.snapshot();
        MetricsFrame {
            requests: self.requests.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            sim_runs: engine.runs,
            sim_batches: engine.batches,
            batch_size: self.batch_size,
        }
    }

    /// The full engine snapshot (pool counters, RNG draws,
    /// histograms) for benchmark documents.
    #[must_use]
    pub fn engine_snapshot(&self) -> MetricsSnapshot {
        self.engine.snapshot()
    }

    /// The distribution of server-side request service times.
    #[must_use]
    pub fn request_ns_snapshot(&self) -> HistogramSnapshot {
        self.request_ns.snapshot()
    }
}

/// RAII handle from [`ServiceMetrics::begin_request`]: drops the
/// in-flight gauge when the response (or the error path) finishes.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    owner: &'a ServiceMetrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.owner.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_tracks_requests_and_cache() {
        let metrics = ServiceMetrics::new(4096);
        {
            let _guard = metrics.begin_request();
            metrics.record_cache(false);
            let frame = metrics.frame();
            assert_eq!(frame.requests, 1);
            assert_eq!(frame.inflight, 1);
            assert_eq!(frame.cache_misses, 1);
            assert_eq!(frame.batch_size, 4096);
        }
        metrics.record_cache(true);
        let frame = metrics.frame();
        assert_eq!(frame.inflight, 0, "guard drop lowers the gauge");
        assert_eq!(frame.cache_hits, 1);
    }

    #[test]
    fn engine_counters_surface_in_frames() {
        use decision::ObliviousAlgorithm;
        use simulator::Simulation;

        let metrics = ServiceMetrics::new(10_000);
        let sim = Simulation::new(10_000, 3).with_metrics(metrics.engine());
        let _ = sim.run(&ObliviousAlgorithm::fair(2), 1.0);
        let frame = metrics.frame();
        assert_eq!(frame.sim_runs, 1);
        assert!(frame.sim_batches >= 1);
        assert_eq!(metrics.engine_snapshot().trials, 10_000);
    }
}
