//! The concurrent read-through analytic cache.
//!
//! Analytic answers are pure functions of their query, so the daemon
//! memoizes them at two levels, both keyed by the **bit pattern** of
//! the floats involved (distinct NaN payloads cannot reach the cache
//! — the wire layer rejects non-finite numbers):
//!
//! 1. an *evaluation context* per `(n, δ)` — a [`SharedContext`]
//!    whose Irwin–Hall tables are built once and shared by every
//!    query that lands on the same capacity, including queries with
//!    *different* rule parameters;
//! 2. a *result memo* per context — the finished answer of each
//!    distinct query, served in O(1) on repeat.
//!
//! Answers are bit-identical to a cold, single-threaded
//! [`EvalContext`](uniform_sums::EvalContext) evaluation of the same
//! query: the memoized tables are themselves pure functions of their
//! keys, so warm and cold evaluations run the exact same float
//! program (property-tested in `tests/bit_identity.rs`).
//!
//! Locking is layered to stay off the hot path: the entry map is
//! behind an [`RwLock`] that repeat traffic only ever read-locks, and
//! entry handles are `Arc`s cloned *out* of the guard, so no map lock
//! is held while a (possibly expensive) evaluation runs.

use crate::query::{CacheStatus, RuleFamily, RuleSpec};
use crate::wire;
use decision::certified::{ThresholdRow, ThresholdTable, SCHEMA as TABLE_SCHEMA};
use decision::numeric::{self, NumericOptimum, SearchOptions};
use decision::{
    winning_probability_threshold_in, ModelError, ObliviousAlgorithm, SingleThresholdAlgorithm,
};
use simulator::AnalyticSweepPoint;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};
use uniform_sums::SharedContext;

/// One `(n, δ)` slot: the shared evaluation context plus the memo of
/// finished answers computed under it.
#[derive(Debug, Default)]
struct Entry {
    ctx: SharedContext<f64>,
    results: RwLock<HashMap<ResultKey, CachedAnswer>>,
}

/// A finished-answer key: the query with its floats frozen to bits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum ResultKey {
    PWin {
        family: RuleFamily,
        param_bits: Vec<u64>,
    },
    Optimal {
        family: RuleFamily,
    },
    Sweep {
        grid: usize,
    },
}

#[derive(Clone, Debug)]
enum CachedAnswer {
    Scalar(f64),
    Optimum(NumericOptimum),
    Curve(Arc<Vec<AnalyticSweepPoint>>),
}

/// The entry map: one slot per `(n, δ-bits)` pair.
type EntryMap = HashMap<(usize, u64), Arc<Entry>>;

/// The daemon's shared analytic cache. Cheap to clone the handle
/// (`Arc` inside); safe to query from any number of connection
/// threads.
#[derive(Clone, Debug, Default)]
pub struct AnalyticCache {
    entries: Arc<RwLock<EntryMap>>,
    /// Certified threshold rows already served at least once, keyed
    /// by `n`. Rows are copied verbatim out of the loaded table, so a
    /// hit is bit-identical to the miss that populated it.
    thresholds: Arc<RwLock<HashMap<u32, ThresholdRow>>>,
}

impl AnalyticCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> AnalyticCache {
        AnalyticCache::default()
    }

    /// Number of `(n, δ)` evaluation contexts currently resident.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.read_entries().len()
    }

    /// The winning probability `P_A(δ)` of a described rule, by the
    /// paper's closed forms (Theorem 4.1 for oblivious rules,
    /// Theorem 5.1 for thresholds).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid parameters, fewer than two
    /// players, or asymmetric vectors beyond the exact-enumeration
    /// bound.
    pub fn pwin(&self, rule: &RuleSpec, delta: f64) -> Result<(f64, CacheStatus), ModelError> {
        let entry = self.entry(rule.n(), delta);
        let key = ResultKey::PWin {
            family: rule.family,
            param_bits: rule.params.iter().map(|p| p.to_bits()).collect(),
        };
        if let Some(CachedAnswer::Scalar(value)) = entry.lookup(&key) {
            return Ok((value, CacheStatus::Hit));
        }
        // Validate through the exact constructors (range checks with
        // per-index diagnostics), then evaluate the float
        // instantiation on the original bit patterns.
        let value = match rule.family {
            RuleFamily::Threshold => {
                SingleThresholdAlgorithm::from_f64(&rule.params)?;
                entry
                    .ctx
                    .with(|ctx| winning_probability_threshold_in(ctx, &rule.params, &delta))?
            }
            RuleFamily::Oblivious => {
                ObliviousAlgorithm::from_f64(&rule.params)?;
                entry.ctx.with(|ctx| {
                    decision::winning_probability_oblivious_in(ctx, &rule.params, &delta)
                })?
            }
        };
        entry.store(key, CachedAnswer::Scalar(value));
        Ok((value, CacheStatus::Miss))
    }

    /// The optimal parameter vector of a family at `(n, δ)`, by the
    /// derivative-free cube search with default [`SearchOptions`]
    /// (deterministic, so the memoized optimum is the one every cold
    /// search would find).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `n` is outside the searchable range.
    pub fn optimal(
        &self,
        family: RuleFamily,
        n: usize,
        delta: f64,
    ) -> Result<(NumericOptimum, CacheStatus), ModelError> {
        let entry = self.entry(n, delta);
        let key = ResultKey::Optimal { family };
        if let Some(CachedAnswer::Optimum(opt)) = entry.lookup(&key) {
            return Ok((opt, CacheStatus::Hit));
        }
        let options = SearchOptions::default();
        let opt = match family {
            RuleFamily::Threshold => numeric::maximize_threshold(n, delta, &options)?,
            RuleFamily::Oblivious => numeric::maximize_oblivious(n, delta, &options)?,
        };
        entry.store(key, CachedAnswer::Optimum(opt.clone()));
        Ok((opt, CacheStatus::Miss))
    }

    /// The closed-form symmetric-threshold curve `P(β, δ)` over a
    /// uniform β grid with `grid + 1` points — the same curve as
    /// [`simulator::sweep_threshold_analytic`], evaluated through the
    /// cached context so repeat sweeps (and β-wise overlapping
    /// queries) reuse the Irwin–Hall tables.
    ///
    /// Callers validate `grid >= 2` (the server rejects smaller grids
    /// as query errors before reaching the cache).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TooFewPlayers`] if `n < 2`.
    pub fn sweep(
        &self,
        n: usize,
        delta: f64,
        grid: usize,
    ) -> Result<(Arc<Vec<AnalyticSweepPoint>>, CacheStatus), ModelError> {
        let entry = self.entry(n, delta);
        let key = ResultKey::Sweep { grid };
        if let Some(CachedAnswer::Curve(points)) = entry.lookup(&key) {
            return Ok((points, CacheStatus::Hit));
        }
        if n < 2 {
            return Err(ModelError::TooFewPlayers { n });
        }
        let points = entry.ctx.with(|ctx| {
            let mut out = Vec::with_capacity(grid + 1);
            for k in 0..=grid {
                let beta = k as f64 / grid as f64;
                let thresholds = vec![beta; n];
                let probability = winning_probability_threshold_in(ctx, &thresholds, &delta)?;
                out.push(AnalyticSweepPoint {
                    x: beta,
                    probability,
                });
            }
            Ok::<_, ModelError>(out)
        })?;
        let points = Arc::new(points);
        entry.store(key, CachedAnswer::Curve(points.clone()));
        Ok((points, CacheStatus::Miss))
    }

    /// The certified optimal-threshold row for `n` at `δ = n/3`,
    /// served from memory through the result memo: the first query
    /// for an `n` copies its row out of the loaded `table` (a miss),
    /// repeats are O(1) hits, and both carry the same `f64` bit
    /// patterns. Returns `None` when the table has no row for `n`.
    #[must_use]
    pub fn threshold(&self, n: u32, table: &ThresholdTable) -> Option<(ThresholdRow, CacheStatus)> {
        if let Some(row) = self
            .thresholds
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&n)
        {
            return Some((row.clone(), CacheStatus::Hit));
        }
        let row = table.rows().iter().find(|row| row.n == n)?.clone();
        self.thresholds
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(n, row.clone());
        Some((row, CacheStatus::Miss))
    }

    fn entry(&self, n: usize, delta: f64) -> Arc<Entry> {
        let key = (n, delta.to_bits());
        if let Some(entry) = self.read_entries().get(&key) {
            return entry.clone();
        }
        let mut entries = self.entries.write().unwrap_or_else(PoisonError::into_inner);
        entries.entry(key).or_default().clone()
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, EntryMap> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Parses a `threshold-table/v1` JSON document (the artifact written
/// by `cargo xtask table`) into the in-memory table the daemon
/// serves. Endpoints arrive bit-exactly: the document's shortest
/// round-trip number tokens recover the generator's `f64` values.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong schema or capacity
/// rule, or a structurally invalid row.
pub fn load_threshold_table(text: &str) -> Result<ThresholdTable, String> {
    let value = wire::parse(text)?;
    let fields = value.fields("table")?;
    let schema = wire::field(fields, "schema", "table")?.str("schema")?;
    if schema != TABLE_SCHEMA {
        return Err(format!(
            "unsupported table schema {schema:?} (this daemon serves {TABLE_SCHEMA:?})"
        ));
    }
    let rule = wire::field(fields, "delta_rule", "table")?.str("delta_rule")?;
    if rule != "n/3" {
        return Err(format!(
            "unsupported capacity rule {rule:?} (expected \"n/3\")"
        ));
    }
    let mut rows = Vec::new();
    for (i, item) in wire::field(fields, "rows", "table")?
        .items("rows")?
        .iter()
        .enumerate()
    {
        let what = format!("rows[{i}]");
        let row = item.fields(&what)?;
        let n = u32::try_from(wire::field(row, "n", &what)?.u64("n")?)
            .map_err(|_| format!("{what}: n out of range"))?;
        let method = match wire::field(row, "method", &what)?.str("method")? {
            "exact" => "exact",
            "ball" => "ball",
            other => return Err(format!("{what}: unknown method {other:?}")),
        };
        rows.push(ThresholdRow {
            n,
            beta_lo: wire::field(row, "beta_lo", &what)?.f64("beta_lo")?,
            beta_hi: wire::field(row, "beta_hi", &what)?.f64("beta_hi")?,
            p_lo: wire::field(row, "p_lo", &what)?.f64("p_lo")?,
            p_hi: wire::field(row, "p_hi", &what)?.f64("p_hi")?,
            method,
        });
    }
    Ok(ThresholdTable::new(rows))
}

impl Entry {
    fn lookup(&self, key: &ResultKey) -> Option<CachedAnswer> {
        self.results
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    fn store(&self, key: ResultKey, answer: CachedAnswer) {
        self.results
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, answer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_sums::EvalContext;

    #[test]
    fn pwin_hits_after_miss_and_matches_cold_eval() {
        let cache = AnalyticCache::new();
        let rule = RuleSpec::threshold(vec![0.622, 0.622, 0.622]);
        let (miss, status) = cache.pwin(&rule, 1.0).unwrap();
        assert_eq!(status, CacheStatus::Miss);
        let (hit, status) = cache.pwin(&rule, 1.0).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert_eq!(miss.to_bits(), hit.to_bits());

        let mut cold = EvalContext::new();
        let direct =
            winning_probability_threshold_in(&mut cold, &[0.622, 0.622, 0.622], &1.0).unwrap();
        assert_eq!(direct.to_bits(), hit.to_bits());
    }

    #[test]
    fn contexts_are_shared_across_distinct_queries() {
        let cache = AnalyticCache::new();
        cache
            .pwin(&RuleSpec::threshold(vec![0.5, 0.5, 0.5]), 1.0)
            .unwrap();
        cache
            .pwin(&RuleSpec::threshold(vec![0.25, 0.75, 0.5]), 1.0)
            .unwrap();
        cache.sweep(3, 1.0, 8).unwrap();
        // Same (n, δ): one context serves all three query shapes.
        assert_eq!(cache.contexts(), 1);
        cache.sweep(4, 1.0, 8).unwrap();
        assert_eq!(cache.contexts(), 2);
    }

    #[test]
    fn sweep_matches_library_curve_bitwise() {
        let cache = AnalyticCache::new();
        let (points, _) = cache.sweep(3, 1.0, 32).unwrap();
        let library = simulator::sweep_threshold_analytic(3, 1.0, 32).unwrap();
        assert_eq!(points.len(), library.len());
        for (ours, theirs) in points.iter().zip(&library) {
            assert_eq!(ours.x.to_bits(), theirs.x.to_bits());
            assert_eq!(ours.probability.to_bits(), theirs.probability.to_bits());
        }
        let (again, status) = cache.sweep(3, 1.0, 32).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&points, &again));
    }

    #[test]
    fn optimal_is_memoized_and_deterministic() {
        let cache = AnalyticCache::new();
        let (opt, status) = cache.optimal(RuleFamily::Oblivious, 3, 1.0).unwrap();
        assert_eq!(status, CacheStatus::Miss);
        let (again, status) = cache.optimal(RuleFamily::Oblivious, 3, 1.0).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert_eq!(opt, again);
        assert!((opt.value - 0.5).abs() < 1e-6);
    }

    #[test]
    fn threshold_rows_hit_after_miss_bit_identically() {
        let cache = AnalyticCache::new();
        let table = decision::certified::build_table(4).unwrap();
        let (miss, status) = cache.threshold(3, &table).unwrap();
        assert_eq!(status, CacheStatus::Miss);
        let (hit, status) = cache.threshold(3, &table).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        assert_eq!(miss.beta_lo.to_bits(), hit.beta_lo.to_bits());
        assert_eq!(miss.beta_hi.to_bits(), hit.beta_hi.to_bits());
        assert_eq!(miss.p_lo.to_bits(), hit.p_lo.to_bits());
        assert_eq!(miss.p_hi.to_bits(), hit.p_hi.to_bits());
        assert_eq!(miss.method, hit.method);
        // β* = 1 − √(1/7) for n = 3 lies inside the served enclosure.
        let beta_star = 1.0 - (1.0f64 / 7.0).sqrt();
        assert!(miss.beta_lo <= beta_star && beta_star <= miss.beta_hi);
        // Off-table asks are refused, not fabricated.
        assert!(cache.threshold(5, &table).is_none());
        assert!(cache.threshold(0, &table).is_none());
    }

    #[test]
    fn threshold_table_round_trips_through_the_wire_loader() {
        let table = decision::certified::build_table(4).unwrap();
        let back = load_threshold_table(&table.to_json()).unwrap();
        assert_eq!(back, table);
        assert!(load_threshold_table("{}").is_err());
        let wrong_schema = table
            .to_json()
            .replace("threshold-table/v1", "threshold-table/v9");
        assert!(load_threshold_table(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let wrong_rule = table.to_json().replace("\"n/3\"", "\"n/2\"");
        assert!(load_threshold_table(&wrong_rule)
            .unwrap_err()
            .contains("capacity rule"));
    }

    #[test]
    fn invalid_rules_are_rejected_not_cached() {
        let cache = AnalyticCache::new();
        let bad = RuleSpec::threshold(vec![0.5, 1.5]);
        assert!(cache.pwin(&bad, 1.0).is_err());
        // The failed query must not have poisoned the result memo.
        let good = RuleSpec::threshold(vec![0.5, 0.5]);
        let (_, status) = cache.pwin(&good, 1.0).unwrap();
        assert_eq!(status, CacheStatus::Miss);
    }
}
