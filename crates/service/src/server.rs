//! The TCP daemon: newline-delimited JSON queries over long-lived
//! connections.
//!
//! One acceptor thread plus one thread per connection. Analytic
//! queries are answered through the shared [`AnalyticCache`];
//! Monte-Carlo queries are retargeted onto **one** persistent worker
//! pool (`Simulation::retargeted` shares the pool across every
//! request), so concurrent simulation requests batch onto the same
//! workers instead of spawning per-request thread sets. Every pooled
//! batch carries the engine's default job deadline, so a stuck batch
//! expires instead of wedging the daemon.
//!
//! Shutdown is graceful and can be triggered remotely (a `shutdown`
//! request) or locally ([`Service::shutdown`]): the accept loop stops
//! (subsequent connects are refused at the OS level once the listener
//! drops), connection threads finish the request they are serving,
//! notice the flag at the next poll tick, and drain; dropping the
//! engine last closes the worker pool — late submissions would get
//! [`SimulationError::PoolClosed`](simulator::SimulationError), never
//! a hang.

use crate::cache::AnalyticCache;
use crate::metrics::ServiceMetrics;
use crate::query::{CacheStatus, Envelope, MetricsFrame, Outcome, Request, Response};
use decision::certified::ThresholdTable;
use decision::LocalRule;
use orchestrator::{run_sweep_with_metrics, OrchestratorConfig, WorkerSpec};
use simulator::{Simulation, SweepCheckpoint};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Process fan-out settings for served `sweep_mc` queries: where the
/// worker binary lives and where shard checkpoints go.
#[derive(Clone, Debug)]
pub struct ShardedSweepConfig {
    /// The worker binary honoring the `nocomm-shard run` CLI.
    pub worker: PathBuf,
    /// Scratch directory for per-sweep shard checkpoints.
    pub dir: PathBuf,
    /// Worker processes per sweep (clamped to the grid size).
    pub shards: usize,
}

/// Tuning for a daemon instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Engine worker threads for pooled Monte-Carlo runs.
    pub engine_threads: usize,
    /// Trials per engine batch — the request-batching granularity.
    pub batch_size: u64,
    /// Largest accepted `trials` per simulate request; bigger asks
    /// are query errors, keeping one client from wedging the pool.
    pub max_trials: u64,
    /// Largest accepted sweep `grid`.
    pub max_grid: usize,
    /// How often a blocked connection read wakes up to check the
    /// shutdown flag (the drain latency bound for idle connections).
    pub poll_interval: Duration,
    /// The certified optimal-threshold table served by `threshold`
    /// queries (see [`crate::cache::load_threshold_table`]); `None`
    /// makes `threshold` queries a query error.
    pub table: Option<Arc<ThresholdTable>>,
    /// Sharded Monte-Carlo sweeps (`sweep_mc` queries): `None` (the
    /// default) makes them a query error, keeping daemons that have
    /// no worker binary from ever spawning processes.
    pub sweeps: Option<ShardedSweepConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            engine_threads: 2,
            batch_size: 16_384,
            max_trials: 50_000_000,
            max_grid: 65_536,
            poll_interval: Duration::from_millis(50),
            table: None,
            sweeps: None,
        }
    }
}

/// Everything connection threads share.
struct Shared {
    cache: AnalyticCache,
    metrics: ServiceMetrics,
    engine: Simulation,
    shutdown: AtomicBool,
    addr: SocketAddr,
    config: ServiceConfig,
    /// Serializes orchestrated sweeps: one coordinator at a time, so
    /// two identical `sweep_mc` requests resume each other's shard
    /// files instead of racing over them. Worker *processes* provide
    /// the parallelism within the one running sweep.
    sweep_gate: Mutex<()>,
}

impl Shared {
    /// Flips the shutdown flag and wakes the acceptor with a
    /// throwaway connection so it can notice without a poll loop.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            drop(TcpStream::connect(self.addr));
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Answers one parsed request. Query-level failures (bad
    /// parameters, unsupported sizes) become `ok: false` responses;
    /// only transport failures tear the connection down.
    fn answer(&self, envelope: &Envelope) -> Response {
        let guard = self.metrics.begin_request();
        let started = Instant::now();
        let outcome = self.outcome(&envelope.request);
        let response = Response {
            id: envelope.id,
            outcome,
            metrics: self.metrics.frame(),
        };
        self.metrics
            .record_request_ns(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        drop(guard);
        response
    }

    #[allow(clippy::too_many_lines)] // one block per request kind; the flow reads top to bottom
    fn outcome(&self, request: &Request) -> Result<Outcome, String> {
        match request {
            Request::PWin { delta, rule } => {
                let (value, cache) = self.cache.pwin(rule, *delta).map_err(|e| e.to_string())?;
                self.metrics.record_cache(cache == CacheStatus::Hit);
                Ok(Outcome::PWin { value, cache })
            }
            Request::Optimal { family, n, delta } => {
                let (opt, cache) = self
                    .cache
                    .optimal(*family, *n, *delta)
                    .map_err(|e| e.to_string())?;
                self.metrics.record_cache(cache == CacheStatus::Hit);
                Ok(Outcome::Optimal {
                    params: opt.params,
                    value: opt.value,
                    evaluations: opt.evaluations,
                    cache,
                })
            }
            Request::Sweep { n, delta, grid } => {
                if *grid < 2 {
                    return Err(format!("grid must be at least 2, found {grid}"));
                }
                if *grid > self.config.max_grid {
                    return Err(format!(
                        "grid {grid} exceeds this daemon's limit of {}",
                        self.config.max_grid
                    ));
                }
                let (points, cache) = self
                    .cache
                    .sweep(*n, *delta, *grid)
                    .map_err(|e| e.to_string())?;
                self.metrics.record_cache(cache == CacheStatus::Hit);
                Ok(Outcome::Sweep {
                    points: points.iter().map(|p| (p.x, p.probability)).collect(),
                    cache,
                })
            }
            Request::SweepMc {
                n,
                delta,
                grid,
                trials,
                seed,
            } => {
                let Some(sweeps) = &self.config.sweeps else {
                    return Err(
                        "this daemon runs no sharded sweeps (no worker binary configured)"
                            .to_owned(),
                    );
                };
                if *grid < 2 {
                    return Err(format!("grid must be at least 2, found {grid}"));
                }
                if *grid > self.config.max_grid {
                    return Err(format!(
                        "grid {grid} exceeds this daemon's limit of {}",
                        self.config.max_grid
                    ));
                }
                let total = trials.checked_mul(*grid as u64 + 1).unwrap_or(u64::MAX);
                if *trials == 0 || total > self.config.max_trials {
                    return Err(format!(
                        "trials x points must be in 1..={}, found {trials} x {}",
                        self.config.max_trials,
                        grid + 1
                    ));
                }
                let request = SweepCheckpoint::new(*n, *delta, *grid, *trials, *seed);
                // One scratch directory per parameter tuple: a repeat
                // of the same sweep resumes surviving shard files.
                let scratch = sweeps.dir.join(format!(
                    "mc-{n}-{grid}-{trials}-{seed}-{:016x}",
                    delta.to_bits()
                ));
                let config = OrchestratorConfig::new(
                    sweeps.shards.clamp(1, grid + 1),
                    &scratch,
                    WorkerSpec::new(&sweeps.worker),
                );
                let gate = self
                    .sweep_gate
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let merged = run_sweep_with_metrics(&request, &config, self.metrics.engine())
                    .map_err(|e| e.to_string())?;
                drop(gate);
                let _cleanup = std::fs::remove_dir_all(&scratch);
                Ok(Outcome::SweepMc {
                    trials: *trials,
                    points: merged
                        .points()
                        .iter()
                        .map(|p| (p.x, p.report.wins))
                        .collect(),
                })
            }
            Request::Shards => {
                let snap = self.metrics.engine_snapshot();
                Ok(Outcome::Shards {
                    issued: snap.shard_issued,
                    completed: snap.shard_completed,
                    reissued: snap.shard_reissued,
                    killed: snap.shard_killed,
                    corrupt: snap.shard_corrupt,
                })
            }
            Request::Threshold { n } => {
                let Some(table) = self.config.table.as_deref() else {
                    return Err("this daemon serves no certified threshold table".to_owned());
                };
                let last = table.rows().last().map_or(0, |row| row.n);
                let Some((row, cache)) = self.cache.threshold(*n, table) else {
                    return Err(format!(
                        "n = {n} is outside the served table (certified rows cover n = 2..={last})"
                    ));
                };
                self.metrics.record_cache(cache == CacheStatus::Hit);
                Ok(Outcome::Threshold {
                    beta_lo: row.beta_lo,
                    beta_hi: row.beta_hi,
                    p_lo: row.p_lo,
                    p_hi: row.p_hi,
                    method: row.method.to_owned(),
                    cache,
                })
            }
            Request::Simulate {
                delta,
                trials,
                seed,
                rule,
            } => {
                if *trials == 0 || *trials > self.config.max_trials {
                    return Err(format!(
                        "trials must be in 1..={}, found {trials}",
                        self.config.max_trials
                    ));
                }
                let rule: Box<dyn LocalRule + Send + Sync> =
                    rule.build().map_err(|e| e.to_string())?;
                let run = self
                    .engine
                    .retargeted(*trials, *seed)
                    .map_err(|e| e.to_string())?;
                let report = run.run(&*rule, *delta);
                Ok(Outcome::Simulate {
                    wins: report.wins,
                    trials: report.trials,
                })
            }
            Request::Shutdown => {
                self.trigger_shutdown();
                Ok(Outcome::ShuttingDown)
            }
        }
    }
}

/// A running daemon: the handle owns the acceptor and every
/// connection thread.
pub struct Service {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Binds and starts serving in background threads; returns as
    /// soon as the listener is live.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or an invalid-config error for a zero
    /// batch size.
    pub fn start(config: ServiceConfig) -> io::Result<Service> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServiceMetrics::new(config.batch_size);
        let engine = Simulation::try_new(config.batch_size.max(1), 0)
            .and_then(|sim| sim.try_with_batch_size(config.batch_size))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
            .with_threads(config.engine_threads)
            .with_metrics(metrics.engine());
        let shared = Arc::new(Shared {
            cache: AnalyticCache::new(),
            metrics,
            engine,
            shutdown: AtomicBool::new(false),
            addr,
            config,
            sweep_gate: Mutex::new(()),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = shared.clone();
            let connections = connections.clone();
            thread::Builder::new()
                .name("nocomm-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &shared, &connections))?
        };
        Ok(Service {
            shared,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live service counters (the same registry responses frame).
    #[must_use]
    pub fn metrics_frame(&self) -> MetricsFrame {
        self.shared.metrics.frame()
    }

    /// The shared service registry, for benchmark documents.
    #[must_use]
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.shared.metrics
    }

    /// Whether a shutdown (local or remote) has been triggered.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Triggers a graceful shutdown and waits for every thread to
    /// drain: in-flight requests finish, new connections are refused,
    /// and the worker pool closes when the engine drops with the last
    /// handle.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join_threads();
    }

    /// Waits until the daemon shuts down (e.g. by a remote `shutdown`
    /// request), then drains every thread.
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        // Take the handles out under the lock, join outside it: a
        // draining connection thread must never contend with a held
        // guard.
        let handles = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in handles {
            drop(handle.join());
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.trigger_shutdown();
        self.join_threads();
    }
}

/// Accepts until shutdown. Connections arriving in the shutdown
/// window are dropped unanswered; once the loop returns and the
/// listener drops, connects are refused by the OS.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let accepted = listener.accept();
        if shared.shutting_down() {
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        let worker = {
            let shared = shared.clone();
            thread::Builder::new()
                .name("nocomm-conn".to_owned())
                .spawn(move || serve_connection(stream, &shared))
        };
        let Ok(handle) = worker else {
            continue; // spawn failure: the dropped stream closes the connection
        };
        connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

/// Serves one connection: one JSON request per line, one JSON
/// response per line, until EOF, a transport error, or shutdown.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // The poll timeout bounds how long an *idle* connection can delay
    // a drain; a request already being served always completes.
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let response = match Envelope::parse(&line) {
                    Ok(envelope) => shared.answer(&envelope),
                    Err(message) => Response {
                        id: 0,
                        outcome: Err(message),
                        metrics: shared.metrics.frame(),
                    },
                };
                line.clear();
                let mut payload = response.to_json();
                payload.push('\n');
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    return; // client went away mid-response
                }
                if matches!(response.outcome, Ok(Outcome::ShuttingDown)) {
                    return;
                }
            }
            // Poll tick: partial bytes (if any) stay accumulated in
            // `line`; re-enter the read unless we are draining.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
