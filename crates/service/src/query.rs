//! Typed queries and answers, with their wire encoding.
//!
//! One request (and one response) is one JSON object on one line.
//! Every request carries a client-chosen `id` that the response
//! echoes, so a client may pipeline many requests over one
//! connection. Floats travel as shortest round-trip number tokens
//! ([`wire::write_number`]), so `δ` and rule parameters arrive at the
//! daemon **bit-identical** to the client's values — the foundation
//! of the served-vs-direct identity tests.
//!
//! The rule grammar is deliberately wider than what the daemon can
//! evaluate today: a rule is a `{"family": …, "params": […]}` object,
//! and unknown families (shared-randomness mixtures, leader-election
//! baselines from the protocol-continuum roadmap) parse up to a
//! well-formed error instead of a protocol failure, so future
//! families extend the schema without breaking deployed clients.

use crate::wire::{self, Json};
use decision::{LocalRule, ModelError, ObliviousAlgorithm, SingleThresholdAlgorithm};
use simulator::SimulationReport;
use std::fmt::Write as _;

/// The protocol tag every request and response carries.
pub const PROTOCOL_VERSION: &str = "nocomm-service/v1";

/// A local-rule family the protocol can name.
///
/// `#[non_exhaustive]`: the protocol-continuum roadmap adds families
/// (shared-randomness rules, leader-election baselines) without a
/// breaking change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RuleFamily {
    /// Single-threshold rules: player `i` picks bin 0 iff `x_i ≤ a_i`.
    Threshold,
    /// Oblivious rules: player `i` picks bin 0 with probability `α_i`,
    /// ignoring its input.
    Oblivious,
}

impl RuleFamily {
    /// The wire name of the family.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleFamily::Threshold => "threshold",
            RuleFamily::Oblivious => "oblivious",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the supported families — unknown
    /// names are a *query* error, not a protocol error, so future
    /// families degrade gracefully on old daemons.
    pub fn parse(name: &str) -> Result<RuleFamily, String> {
        match name {
            "threshold" => Ok(RuleFamily::Threshold),
            "oblivious" => Ok(RuleFamily::Oblivious),
            other => Err(format!(
                "unsupported rule family {other:?} (this daemon serves: threshold, oblivious)"
            )),
        }
    }
}

/// A serializable rule description: a family plus its parameter
/// vector.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleSpec {
    /// The rule family.
    pub family: RuleFamily,
    /// Per-player parameters (thresholds `a_i` or probabilities `α_i`).
    pub params: Vec<f64>,
}

impl RuleSpec {
    /// A symmetric single-threshold rule description.
    #[must_use]
    pub fn threshold(params: Vec<f64>) -> RuleSpec {
        RuleSpec {
            family: RuleFamily::Threshold,
            params,
        }
    }

    /// An oblivious rule description.
    #[must_use]
    pub fn oblivious(params: Vec<f64>) -> RuleSpec {
        RuleSpec {
            family: RuleFamily::Oblivious,
            params,
        }
    }

    /// Number of players the description covers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.params.len()
    }

    /// Materializes the described rule for the simulation engine.
    /// Parameters convert exactly (dyadic rationals), so the engine
    /// sees bit-identical `f64` values through the kernel hint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for out-of-range or non-finite
    /// parameters or fewer than two players.
    pub fn build(&self) -> Result<Box<dyn LocalRule + Send + Sync>, ModelError> {
        match self.family {
            RuleFamily::Threshold => {
                Ok(Box::new(SingleThresholdAlgorithm::from_f64(&self.params)?))
            }
            RuleFamily::Oblivious => Ok(Box::new(ObliviousAlgorithm::from_f64(&self.params)?)),
        }
    }

    fn from_json(value: &Json) -> Result<RuleSpec, String> {
        let fields = value.fields("rule")?;
        let family = RuleFamily::parse(wire::field(fields, "family", "rule")?.str("rule.family")?)?;
        let mut params = Vec::new();
        for (i, item) in wire::field(fields, "params", "rule")?
            .items("rule.params")?
            .iter()
            .enumerate()
        {
            params.push(item.f64(&format!("rule.params[{i}]"))?);
        }
        Ok(RuleSpec { family, params })
    }

    fn write(&self, out: &mut String) {
        out.push_str("{\"family\": ");
        wire::write_str(out, self.family.as_str());
        out.push_str(", \"params\": [");
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            wire::write_number(out, *p);
        }
        out.push_str("]}");
    }
}

/// One query the daemon can answer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// `P_A(δ)` of a described rule, by the paper's closed forms
    /// (Theorem 4.1 for oblivious, Theorem 5.1 for thresholds),
    /// served through the analytic cache.
    PWin {
        /// Bin capacity δ.
        delta: f64,
        /// The rule under evaluation.
        rule: RuleSpec,
    },
    /// The optimal parameter vector of a family at `(n, δ)`
    /// (derivative-free maximization over `[0,1]^n`).
    Optimal {
        /// The family to optimize over.
        family: RuleFamily,
        /// Number of players.
        n: usize,
        /// Bin capacity δ.
        delta: f64,
    },
    /// The closed-form curve `P(β, δ)` of the symmetric threshold
    /// family over a uniform β grid.
    Sweep {
        /// Number of players.
        n: usize,
        /// Bin capacity δ.
        delta: f64,
        /// Grid divisions (the sweep has `grid + 1` points).
        grid: usize,
    },
    /// The certified optimal-threshold enclosure `β*_n` (and `P*_n`)
    /// at the paper's capacity rule `δ = n/3`, served from the
    /// precomputed `threshold-table/v1` table held in memory.
    Threshold {
        /// Number of players.
        n: u32,
    },
    /// A Monte-Carlo sweep of the symmetric threshold family, fanned
    /// out over worker *processes* by the orchestrator and merged
    /// bit-identically to a single uninterrupted sweep. A query error
    /// on daemons configured without a worker binary.
    SweepMc {
        /// Number of players.
        n: usize,
        /// Bin capacity δ.
        delta: f64,
        /// Grid divisions (the sweep has `grid + 1` points).
        grid: usize,
        /// Monte-Carlo trials per grid point.
        trials: u64,
        /// Sweep seed — point `k` runs on a stream derived from
        /// `(seed, k)`, so sharding cannot change the answer.
        seed: u64,
    },
    /// The orchestrator's shard supervision ledger (issued, completed,
    /// re-issued, killed, corrupt), for watching fan-out health.
    Shards,
    /// A Monte-Carlo confidence run of a described rule, batched onto
    /// the daemon's shared worker pool.
    Simulate {
        /// Bin capacity δ.
        delta: f64,
        /// Trials to run.
        trials: u64,
        /// Engine seed — same seed, same report, bit for bit.
        seed: u64,
        /// The rule under simulation.
        rule: RuleSpec,
    },
    /// Begin a graceful shutdown: in-flight requests drain, new
    /// connections are refused, the worker pool closes.
    Shutdown,
}

impl Request {
    /// The request's wire kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::PWin { .. } => "pwin",
            Request::Optimal { .. } => "optimal",
            Request::Sweep { .. } => "sweep",
            Request::SweepMc { .. } => "sweep_mc",
            Request::Shards => "shards",
            Request::Threshold { .. } => "threshold",
            Request::Simulate { .. } => "simulate",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its client-chosen correlation id.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// The query itself.
    pub request: Request,
}

impl Envelope {
    /// Serializes the request as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"v\": ");
        wire::write_str(&mut out, PROTOCOL_VERSION);
        let _ = write!(out, ", \"id\": {}, \"kind\": ", self.id);
        wire::write_str(&mut out, self.request.kind());
        match &self.request {
            Request::PWin { delta, rule } => {
                out.push_str(", \"delta\": ");
                wire::write_number(&mut out, *delta);
                out.push_str(", \"rule\": ");
                rule.write(&mut out);
            }
            Request::Optimal { family, n, delta } => {
                out.push_str(", \"family\": ");
                wire::write_str(&mut out, family.as_str());
                let _ = write!(out, ", \"n\": {n}, \"delta\": ");
                wire::write_number(&mut out, *delta);
            }
            Request::Sweep { n, delta, grid } => {
                let _ = write!(out, ", \"n\": {n}, \"delta\": ");
                wire::write_number(&mut out, *delta);
                let _ = write!(out, ", \"grid\": {grid}");
            }
            Request::SweepMc {
                n,
                delta,
                grid,
                trials,
                seed,
            } => {
                let _ = write!(out, ", \"n\": {n}, \"delta\": ");
                wire::write_number(&mut out, *delta);
                let _ = write!(
                    out,
                    ", \"grid\": {grid}, \"trials\": {trials}, \"seed\": {seed}"
                );
            }
            Request::Shards | Request::Shutdown => {}
            Request::Threshold { n } => {
                let _ = write!(out, ", \"n\": {n}");
            }
            Request::Simulate {
                delta,
                trials,
                seed,
                rule,
            } => {
                out.push_str(", \"delta\": ");
                wire::write_number(&mut out, *delta);
                let _ = write!(out, ", \"trials\": {trials}, \"seed\": {seed}, \"rule\": ");
                rule.write(&mut out);
            }
        }
        out.push('}');
        out
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong protocol tag, a
    /// missing/ill-typed field, or an unknown kind or rule family.
    pub fn parse(line: &str) -> Result<Envelope, String> {
        let value = wire::parse(line)?;
        let fields = value.fields("request")?;
        if let Some(v) = wire::field_opt(fields, "v") {
            let tag = v.str("v")?;
            if tag != PROTOCOL_VERSION {
                return Err(format!(
                    "protocol {tag:?} is not supported (this daemon speaks {PROTOCOL_VERSION:?})"
                ));
            }
        }
        let id = wire::field(fields, "id", "request")?.u64("id")?;
        let kind = wire::field(fields, "kind", "request")?.str("kind")?;
        let delta = |what: &str| -> Result<f64, String> {
            let d = wire::field(fields, "delta", what)?.f64("delta")?;
            if d > 0.0 {
                Ok(d)
            } else {
                Err(format!("delta must be positive, found {d:?}"))
            }
        };
        let rule = |what: &str| RuleSpec::from_json(wire::field(fields, "rule", what)?);
        let request = match kind {
            "pwin" => Request::PWin {
                delta: delta("pwin request")?,
                rule: rule("pwin request")?,
            },
            "optimal" => Request::Optimal {
                family: RuleFamily::parse(
                    wire::field(fields, "family", "optimal request")?.str("family")?,
                )?,
                n: usize::try_from(wire::field(fields, "n", "optimal request")?.u64("n")?)
                    .map_err(|_| "n out of range".to_owned())?,
                delta: delta("optimal request")?,
            },
            "sweep" => Request::Sweep {
                n: usize::try_from(wire::field(fields, "n", "sweep request")?.u64("n")?)
                    .map_err(|_| "n out of range".to_owned())?,
                delta: delta("sweep request")?,
                grid: usize::try_from(wire::field(fields, "grid", "sweep request")?.u64("grid")?)
                    .map_err(|_| "grid out of range".to_owned())?,
            },
            "sweep_mc" => Request::SweepMc {
                n: usize::try_from(wire::field(fields, "n", "sweep_mc request")?.u64("n")?)
                    .map_err(|_| "n out of range".to_owned())?,
                delta: delta("sweep_mc request")?,
                grid: usize::try_from(
                    wire::field(fields, "grid", "sweep_mc request")?.u64("grid")?,
                )
                .map_err(|_| "grid out of range".to_owned())?,
                trials: wire::field(fields, "trials", "sweep_mc request")?.u64("trials")?,
                seed: wire::field(fields, "seed", "sweep_mc request")?.u64("seed")?,
            },
            "shards" => Request::Shards,
            "threshold" => Request::Threshold {
                n: u32::try_from(wire::field(fields, "n", "threshold request")?.u64("n")?)
                    .map_err(|_| "n out of range".to_owned())?,
            },
            "simulate" => Request::Simulate {
                delta: delta("simulate request")?,
                trials: wire::field(fields, "trials", "simulate request")?.u64("trials")?,
                seed: wire::field(fields, "seed", "simulate request")?.u64("seed")?,
                rule: rule("simulate request")?,
            },
            "shutdown" => Request::Shutdown,
            other => {
                return Err(format!(
                    "unknown request kind {other:?} (pwin, optimal, sweep, sweep_mc, shards, threshold, simulate, shutdown)"
                ))
            }
        };
        Ok(Envelope { id, request })
    }
}

/// Whether an analytic answer came from the concurrent cache or was
/// computed on this request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served in O(1) from the read-through cache.
    Hit,
    /// Computed (and cached) on this request.
    Miss,
}

impl CacheStatus {
    /// The wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }

    fn parse(name: &str) -> Result<CacheStatus, String> {
        match name {
            "hit" => Ok(CacheStatus::Hit),
            "miss" => Ok(CacheStatus::Miss),
            other => Err(format!("unknown cache status {other:?}")),
        }
    }
}

/// The service-level counters every response carries, in the flat
/// `engine-metrics/v1` counter style: observability is part of the
/// protocol, not an add-on endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsFrame {
    /// Requests accepted over the daemon's lifetime.
    pub requests: u64,
    /// Requests in flight right now (the queue depth, this one
    /// included).
    pub inflight: u64,
    /// Analytic queries served from the cache.
    pub cache_hits: u64,
    /// Analytic queries computed on miss.
    pub cache_misses: u64,
    /// Monte-Carlo runs executed on the shared engine.
    pub sim_runs: u64,
    /// Engine batches executed across all Monte-Carlo runs.
    pub sim_batches: u64,
    /// Trials per engine batch (the request-batching granularity).
    pub batch_size: u64,
}

impl MetricsFrame {
    /// The frame as ordered `(key, value)` counter rows.
    #[must_use]
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("requests.total", self.requests),
            ("requests.inflight", self.inflight),
            ("cache.hits", self.cache_hits),
            ("cache.misses", self.cache_misses),
            ("sim.runs", self.sim_runs),
            ("sim.batches", self.sim_batches),
            ("sim.batch_size", self.batch_size),
        ]
    }

    fn write(&self, out: &mut String) {
        out.push('{');
        for (i, (key, value)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            wire::write_str(out, key);
            let _ = write!(out, ": {value}");
        }
        out.push('}');
    }

    fn from_json(value: &Json) -> Result<MetricsFrame, String> {
        let fields = value.fields("metrics")?;
        let get =
            |key: &str| -> Result<u64, String> { wire::field(fields, key, "metrics")?.u64(key) };
        Ok(MetricsFrame {
            requests: get("requests.total")?,
            inflight: get("requests.inflight")?,
            cache_hits: get("cache.hits")?,
            cache_misses: get("cache.misses")?,
            sim_runs: get("sim.runs")?,
            sim_batches: get("sim.batches")?,
            batch_size: get("sim.batch_size")?,
        })
    }
}

/// A successful answer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Outcome {
    /// The closed-form winning probability.
    PWin {
        /// `P_A(δ)`.
        value: f64,
        /// Cache disposition of the answer.
        cache: CacheStatus,
    },
    /// The family optimum at `(n, δ)`.
    Optimal {
        /// The maximizing parameter vector.
        params: Vec<f64>,
        /// The achieved winning probability.
        value: f64,
        /// Objective evaluations the (possibly cached) search spent.
        evaluations: u64,
        /// Cache disposition of the answer.
        cache: CacheStatus,
    },
    /// The analytic curve as `(β, P(β, δ))` pairs.
    Sweep {
        /// Grid points in ascending β order.
        points: Vec<(f64, f64)>,
        /// Cache disposition of the answer.
        cache: CacheStatus,
    },
    /// A certified optimal-threshold row at `δ = n/3`: rigorous
    /// enclosures of `β*_n` and `P*_n` whose endpoints travel
    /// bit-exactly, so repeat queries (cache hits) are bit-identical.
    Threshold {
        /// Lower bound of the certified `β*_n` enclosure.
        beta_lo: f64,
        /// Upper bound of the certified `β*_n` enclosure.
        beta_hi: f64,
        /// Lower bound of the certified `P*_n` enclosure.
        p_lo: f64,
        /// Upper bound of the certified `P*_n` enclosure.
        p_hi: f64,
        /// Certifying pipeline (`"exact"` or `"ball"`).
        method: String,
        /// Cache disposition of the answer.
        cache: CacheStatus,
    },
    /// A sharded Monte-Carlo sweep: per-point win counts merged from
    /// worker-process shard checkpoints, byte-identical to a single
    /// uninterrupted sweep. Only counts travel — estimates rebuild
    /// through [`SimulationReport::from_counts`].
    SweepMc {
        /// Trials per grid point.
        trials: u64,
        /// `(β, wins)` per grid point in ascending β order.
        points: Vec<(f64, u64)>,
    },
    /// The shard supervision ledger at answer time.
    Shards {
        /// Worker processes issued (spawned) in total.
        issued: u64,
        /// Shards completed by workers and accepted.
        completed: u64,
        /// Shards re-issued after a worker death, stall, or corrupt
        /// hand-back.
        reissued: u64,
        /// Workers killed by the supervisor (stall or deadline).
        killed: u64,
        /// Corrupt shard checkpoints detected and scrubbed.
        corrupt: u64,
    },
    /// The Monte-Carlo estimate. Only the counts travel: estimate and
    /// standard error are rebuilt through
    /// [`SimulationReport::from_counts`], the same code path a direct
    /// run uses, so round-tripping cannot drift.
    Simulate {
        /// Winning trials.
        wins: u64,
        /// Total trials.
        trials: u64,
    },
    /// The daemon acknowledged a shutdown request and is draining.
    ShuttingDown,
}

impl Outcome {
    /// Rebuilds the full report of a [`Outcome::Simulate`] answer.
    /// Returns `None` for other outcome kinds.
    #[must_use]
    pub fn report(&self) -> Option<SimulationReport> {
        match self {
            Outcome::Simulate { wins, trials } => {
                Some(SimulationReport::from_counts(*wins, *trials))
            }
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Outcome::PWin { .. } => "pwin",
            Outcome::Optimal { .. } => "optimal",
            Outcome::Sweep { .. } => "sweep",
            Outcome::SweepMc { .. } => "sweep_mc",
            Outcome::Shards { .. } => "shards",
            Outcome::Threshold { .. } => "threshold",
            Outcome::Simulate { .. } => "simulate",
            Outcome::ShuttingDown => "shutdown",
        }
    }
}

/// One answer line: the echoed id, the outcome (or a query error),
/// and the service metrics frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// The answer, or a human-readable query error.
    pub outcome: Result<Outcome, String>,
    /// Service counters at answer time.
    pub metrics: MetricsFrame,
}

impl Response {
    /// Serializes the response as one JSON line (no trailing
    /// newline).
    #[must_use]
    #[allow(clippy::too_many_lines)] // one block per outcome variant; the flow reads top to bottom
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"v\": ");
        wire::write_str(&mut out, PROTOCOL_VERSION);
        let _ = write!(out, ", \"id\": {}, \"ok\": ", self.id);
        match &self.outcome {
            Ok(outcome) => {
                out.push_str("true, \"kind\": ");
                wire::write_str(&mut out, outcome.kind());
                match outcome {
                    Outcome::PWin { value, cache } => {
                        out.push_str(", \"value\": ");
                        wire::write_number(&mut out, *value);
                        out.push_str(", \"cache\": ");
                        wire::write_str(&mut out, cache.as_str());
                    }
                    Outcome::Optimal {
                        params,
                        value,
                        evaluations,
                        cache,
                    } => {
                        out.push_str(", \"params\": [");
                        for (i, p) in params.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            wire::write_number(&mut out, *p);
                        }
                        out.push_str("], \"value\": ");
                        wire::write_number(&mut out, *value);
                        let _ = write!(out, ", \"evaluations\": {evaluations}, \"cache\": ");
                        wire::write_str(&mut out, cache.as_str());
                    }
                    Outcome::Sweep { points, cache } => {
                        out.push_str(", \"points\": [");
                        for (i, (x, p)) in points.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push('[');
                            wire::write_number(&mut out, *x);
                            out.push_str(", ");
                            wire::write_number(&mut out, *p);
                            out.push(']');
                        }
                        out.push_str("], \"cache\": ");
                        wire::write_str(&mut out, cache.as_str());
                    }
                    Outcome::Threshold {
                        beta_lo,
                        beta_hi,
                        p_lo,
                        p_hi,
                        method,
                        cache,
                    } => {
                        out.push_str(", \"beta_lo\": ");
                        wire::write_number(&mut out, *beta_lo);
                        out.push_str(", \"beta_hi\": ");
                        wire::write_number(&mut out, *beta_hi);
                        out.push_str(", \"p_lo\": ");
                        wire::write_number(&mut out, *p_lo);
                        out.push_str(", \"p_hi\": ");
                        wire::write_number(&mut out, *p_hi);
                        out.push_str(", \"method\": ");
                        wire::write_str(&mut out, method);
                        out.push_str(", \"cache\": ");
                        wire::write_str(&mut out, cache.as_str());
                    }
                    Outcome::SweepMc { trials, points } => {
                        let _ = write!(out, ", \"trials\": {trials}, \"points\": [");
                        for (i, (x, wins)) in points.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push('[');
                            wire::write_number(&mut out, *x);
                            let _ = write!(out, ", {wins}]");
                        }
                        out.push(']');
                    }
                    Outcome::Shards {
                        issued,
                        completed,
                        reissued,
                        killed,
                        corrupt,
                    } => {
                        let _ = write!(
                            out,
                            ", \"issued\": {issued}, \"completed\": {completed}, \"reissued\": {reissued}, \"killed\": {killed}, \"corrupt\": {corrupt}"
                        );
                    }
                    Outcome::Simulate { wins, trials } => {
                        let _ = write!(out, ", \"wins\": {wins}, \"trials\": {trials}");
                    }
                    Outcome::ShuttingDown => {}
                }
            }
            Err(message) => {
                out.push_str("false, \"error\": ");
                wire::write_str(&mut out, message);
            }
        }
        out.push_str(", \"metrics\": ");
        self.metrics.write(&mut out);
        out.push('}');
        out
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a structurally invalid
    /// response.
    #[allow(clippy::too_many_lines)] // one block per outcome variant; the flow reads top to bottom
    pub fn parse(line: &str) -> Result<Response, String> {
        let value = wire::parse(line)?;
        let fields = value.fields("response")?;
        let id = wire::field(fields, "id", "response")?.u64("id")?;
        let metrics = MetricsFrame::from_json(wire::field(fields, "metrics", "response")?)?;
        let ok = wire::field(fields, "ok", "response")?.bool("ok")?;
        if !ok {
            let message = wire::field(fields, "error", "response")?
                .str("error")?
                .to_owned();
            return Ok(Response {
                id,
                outcome: Err(message),
                metrics,
            });
        }
        let kind = wire::field(fields, "kind", "response")?.str("kind")?;
        let cache = || -> Result<CacheStatus, String> {
            CacheStatus::parse(wire::field(fields, "cache", "response")?.str("cache")?)
        };
        let outcome = match kind {
            "pwin" => Outcome::PWin {
                value: wire::field(fields, "value", "pwin response")?.f64("value")?,
                cache: cache()?,
            },
            "optimal" => {
                let mut params = Vec::new();
                for (i, item) in wire::field(fields, "params", "optimal response")?
                    .items("params")?
                    .iter()
                    .enumerate()
                {
                    params.push(item.f64(&format!("params[{i}]"))?);
                }
                Outcome::Optimal {
                    params,
                    value: wire::field(fields, "value", "optimal response")?.f64("value")?,
                    evaluations: wire::field(fields, "evaluations", "optimal response")?
                        .u64("evaluations")?,
                    cache: cache()?,
                }
            }
            "sweep" => {
                let mut points = Vec::new();
                for (i, item) in wire::field(fields, "points", "sweep response")?
                    .items("points")?
                    .iter()
                    .enumerate()
                {
                    let pair = item.items(&format!("points[{i}]"))?;
                    if pair.len() != 2 {
                        return Err(format!("points[{i}] must be an [x, p] pair"));
                    }
                    points.push((pair[0].f64("x")?, pair[1].f64("p")?));
                }
                Outcome::Sweep {
                    points,
                    cache: cache()?,
                }
            }
            "threshold" => {
                let num = |key: &str| -> Result<f64, String> {
                    wire::field(fields, key, "threshold response")?.f64(key)
                };
                Outcome::Threshold {
                    beta_lo: num("beta_lo")?,
                    beta_hi: num("beta_hi")?,
                    p_lo: num("p_lo")?,
                    p_hi: num("p_hi")?,
                    method: wire::field(fields, "method", "threshold response")?
                        .str("method")?
                        .to_owned(),
                    cache: cache()?,
                }
            }
            "sweep_mc" => {
                let trials = wire::field(fields, "trials", "sweep_mc response")?.u64("trials")?;
                let mut points = Vec::new();
                for (i, item) in wire::field(fields, "points", "sweep_mc response")?
                    .items("points")?
                    .iter()
                    .enumerate()
                {
                    let pair = item.items(&format!("points[{i}]"))?;
                    if pair.len() != 2 {
                        return Err(format!("points[{i}] must be a [beta, wins] pair"));
                    }
                    let wins = pair[1].u64("wins")?;
                    if wins > trials {
                        return Err(format!("{wins} wins out of {trials} trials is impossible"));
                    }
                    points.push((pair[0].f64("beta")?, wins));
                }
                Outcome::SweepMc { trials, points }
            }
            "shards" => {
                let get = |key: &str| -> Result<u64, String> {
                    wire::field(fields, key, "shards response")?.u64(key)
                };
                Outcome::Shards {
                    issued: get("issued")?,
                    completed: get("completed")?,
                    reissued: get("reissued")?,
                    killed: get("killed")?,
                    corrupt: get("corrupt")?,
                }
            }
            "simulate" => {
                let wins = wire::field(fields, "wins", "simulate response")?.u64("wins")?;
                let trials = wire::field(fields, "trials", "simulate response")?.u64("trials")?;
                if wins > trials {
                    return Err(format!("{wins} wins out of {trials} trials is impossible"));
                }
                Outcome::Simulate { wins, trials }
            }
            "shutdown" => Outcome::ShuttingDown,
            other => return Err(format!("unknown response kind {other:?}")),
        };
        Ok(Response {
            id,
            outcome: Ok(outcome),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> MetricsFrame {
        MetricsFrame {
            requests: 10,
            inflight: 2,
            cache_hits: 5,
            cache_misses: 3,
            sim_runs: 1,
            sim_batches: 7,
            batch_size: 16_384,
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Envelope {
                id: 1,
                request: Request::PWin {
                    delta: 1.0,
                    rule: RuleSpec::threshold(vec![0.622, 0.622, 0.622]),
                },
            },
            Envelope {
                id: 2,
                request: Request::Optimal {
                    family: RuleFamily::Oblivious,
                    n: 4,
                    delta: 4.0 / 3.0,
                },
            },
            Envelope {
                id: 3,
                request: Request::Sweep {
                    n: 3,
                    delta: 0.1,
                    grid: 32,
                },
            },
            Envelope {
                id: 4,
                request: Request::Threshold { n: 96 },
            },
            Envelope {
                id: u64::MAX,
                request: Request::Simulate {
                    delta: 1.0,
                    trials: 100_000,
                    seed: 42,
                    rule: RuleSpec::oblivious(vec![0.5, 0.5]),
                },
            },
            Envelope {
                id: 6,
                request: Request::SweepMc {
                    n: 3,
                    delta: 1.0,
                    grid: 8,
                    trials: 10_000,
                    seed: 17,
                },
            },
            Envelope {
                id: 7,
                request: Request::Shards,
            },
            Envelope {
                id: 5,
                request: Request::Shutdown,
            },
        ];
        for envelope in cases {
            let line = envelope.to_json();
            assert!(!line.contains('\n'), "one line: {line}");
            let back = Envelope::parse(&line).unwrap();
            assert_eq!(back, envelope, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response {
                id: 1,
                outcome: Ok(Outcome::PWin {
                    value: 0.544_727,
                    cache: CacheStatus::Hit,
                }),
                metrics: frame(),
            },
            Response {
                id: 2,
                outcome: Ok(Outcome::Optimal {
                    params: vec![0.622, 0.622],
                    value: 0.5,
                    evaluations: 1234,
                    cache: CacheStatus::Miss,
                }),
                metrics: frame(),
            },
            Response {
                id: 3,
                outcome: Ok(Outcome::Sweep {
                    points: vec![(0.0, 1.0 / 6.0), (0.5, 23.0 / 48.0)],
                    cache: CacheStatus::Miss,
                }),
                metrics: frame(),
            },
            Response {
                id: 4,
                outcome: Ok(Outcome::Simulate {
                    wins: 54_470,
                    trials: 100_000,
                }),
                metrics: frame(),
            },
            Response {
                id: 7,
                outcome: Ok(Outcome::Threshold {
                    beta_lo: 0.622_035_526_990_772_7,
                    beta_hi: 0.622_035_526_990_772_8,
                    p_lo: 0.544_631_139_559_79,
                    p_hi: 0.544_631_139_559_80,
                    method: "ball".to_owned(),
                    cache: CacheStatus::Hit,
                }),
                metrics: frame(),
            },
            Response {
                id: 8,
                outcome: Ok(Outcome::SweepMc {
                    trials: 2_000,
                    points: vec![(0.0, 333), (0.5, 958), (1.0, 289)],
                }),
                metrics: frame(),
            },
            Response {
                id: 9,
                outcome: Ok(Outcome::Shards {
                    issued: 6,
                    completed: 3,
                    reissued: 3,
                    killed: 1,
                    corrupt: 1,
                }),
                metrics: frame(),
            },
            Response {
                id: 5,
                outcome: Ok(Outcome::ShuttingDown),
                metrics: frame(),
            },
            Response {
                id: 6,
                outcome: Err("unsupported rule family \"dicey\"".to_owned()),
                metrics: frame(),
            },
        ];
        for response in cases {
            let line = response.to_json();
            assert!(!line.contains('\n'), "one line: {line}");
            let back = Response::parse(&line).unwrap();
            assert_eq!(back, response, "{line}");
        }
    }

    #[test]
    fn delta_and_params_travel_bit_exactly() {
        for delta in [0.1, 1.0 / 3.0, 2.5e-7, 4.0] {
            let envelope = Envelope {
                id: 9,
                request: Request::PWin {
                    delta,
                    rule: RuleSpec::threshold(vec![1.0 / 7.0, 0.3]),
                },
            };
            let Request::PWin { delta: back, rule } =
                Envelope::parse(&envelope.to_json()).unwrap().request
            else {
                panic!("kind preserved");
            };
            assert_eq!(back.to_bits(), delta.to_bits());
            assert_eq!(rule.params[0].to_bits(), (1.0f64 / 7.0).to_bits());
        }
    }

    #[test]
    fn unknown_family_and_kind_are_query_errors() {
        let line = r#"{"v": "nocomm-service/v1", "id": 1, "kind": "pwin", "delta": 1.0, "rule": {"family": "dicey-shared-randomness", "params": [0.5, 0.5]}}"#;
        let err = Envelope::parse(line).unwrap_err();
        assert!(err.contains("unsupported rule family"), "{err}");
        let line = r#"{"id": 1, "kind": "elect-leader"}"#;
        let err = Envelope::parse(line).unwrap_err();
        assert!(err.contains("unknown request kind"), "{err}");
    }

    #[test]
    fn bad_protocol_and_bad_delta_are_rejected() {
        let line = r#"{"v": "nocomm-service/v9", "id": 1, "kind": "shutdown"}"#;
        assert!(Envelope::parse(line).unwrap_err().contains("protocol"));
        let line = r#"{"id": 1, "kind": "sweep", "n": 3, "delta": -1.0, "grid": 8}"#;
        assert!(Envelope::parse(line).unwrap_err().contains("positive"));
        let line = r#"{"id": 1, "kind": "sweep", "n": 3, "delta": 1e999, "grid": 8}"#;
        assert!(Envelope::parse(line).unwrap_err().contains("finite"));
    }

    #[test]
    fn simulate_report_rebuilds_from_counts() {
        let outcome = Outcome::Simulate { wins: 3, trials: 4 };
        let report = outcome.report().unwrap();
        assert_eq!(report, SimulationReport::from_counts(3, 4));
        assert!(Outcome::ShuttingDown.report().is_none());
    }
}
