//! A minimal blocking client for the daemon's line protocol.
//!
//! One [`Client`] wraps one connection and pairs requests with
//! responses by correlation id. It exists for the smoke mode, the
//! integration tests, and the load generator; it is deliberately
//! synchronous — concurrency comes from running many clients.

use crate::query::{Envelope, Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the connect (or stream-clone) error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns transport errors as-is; a malformed response line or a
    /// mismatched correlation id surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn roundtrip(&mut self, request: Request) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = Envelope { id, request };
        let mut payload = envelope.to_json();
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before answering",
            ));
        }
        let response = Response::parse(&line)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))?;
        if response.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} does not match request id {id}", response.id),
            ));
        }
        Ok(response)
    }
}
