//! The nocomm query daemon: the paper's analytics and the
//! Monte-Carlo engine behind a long-running network service.
//!
//! Everything below the wire is the existing workspace — this crate
//! adds the *serving* layers:
//!
//! * [`wire`] — a zero-dependency, hand-rolled JSON subset
//!   (newline-delimited documents, bit-exact float round-trips);
//! * [`query`] — the typed protocol (`nocomm-service/v1`): requests
//!   `pwin`, `optimal`, `sweep`, `sweep_mc`, `shards`, `threshold`,
//!   `simulate`, `shutdown`, and responses that carry an
//!   `engine-metrics/v1`-style counter frame; `sweep_mc` fans a
//!   Monte-Carlo sweep out over worker *processes* through the
//!   `orchestrator` crate and `shards` reports its supervision
//!   ledger;
//! * [`cache`] — the concurrent read-through [`AnalyticCache`]:
//!   one shared [`uniform_sums::SharedContext`] per `(n, δ)` plus a
//!   result memo, making repeated analytic queries O(1) under load
//!   while staying bit-identical to a cold single-threaded
//!   evaluation; `threshold` queries serve certified `β*_n`
//!   enclosures from the in-memory `threshold-table/v1` table
//!   ([`load_threshold_table`]) through the same memo, so hits are
//!   bit-identical to the miss that populated them;
//! * [`metrics`] — [`ServiceMetrics`], request counters layered over
//!   the engine's [`simulator::EngineMetrics`];
//! * [`server`] — the TCP daemon ([`Service`]): thread-per-connection
//!   serving, Monte-Carlo requests batched onto **one** persistent
//!   worker pool via [`simulator::Simulation::retargeted`], and
//!   graceful drain/shutdown on top of the engine's job-deadline and
//!   pool-close machinery;
//! * [`client`] — a small blocking [`Client`] for tests, the smoke
//!   mode, and the load generator.
//!
//! # Determinism contract
//!
//! Served answers are bit-identical to direct library calls: analytic
//! values to a cold [`uniform_sums::EvalContext`] evaluation, and
//! Monte-Carlo counts to [`simulator::Simulation::run`] with the same
//! `(trials, seed, batch_size)`. Floats cross the wire as shortest
//! round-trip tokens, so the identity holds end-to-end over TCP
//! (property-tested in `tests/bit_identity.rs`).
//!
//! # Examples
//!
//! ```
//! use service::{Client, Outcome, Request, RuleSpec, Service, ServiceConfig};
//!
//! let daemon = Service::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(daemon.local_addr()).unwrap();
//!
//! let response = client
//!     .roundtrip(Request::PWin {
//!         delta: 1.0,
//!         rule: RuleSpec::threshold(vec![0.5, 0.5, 0.5]),
//!     })
//!     .unwrap();
//! let Ok(Outcome::PWin { value, .. }) = response.outcome else {
//!     panic!("analytic answer expected");
//! };
//! // The paper's curve at β = 1/2, n = 3, δ = 1: 23/48.
//! assert!((value - 23.0 / 48.0).abs() < 1e-12);
//! daemon.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod query;
pub mod server;
pub mod wire;

pub use cache::{load_threshold_table, AnalyticCache};
pub use client::Client;
pub use metrics::ServiceMetrics;
pub use query::{
    CacheStatus, Envelope, MetricsFrame, Outcome, Request, Response, RuleFamily, RuleSpec,
    PROTOCOL_VERSION,
};
pub use server::{Service, ServiceConfig, ShardedSweepConfig};
