//! The daemon's wire layer: a hand-rolled JSON value type, parser,
//! and writer.
//!
//! Like every serialized artifact in this workspace
//! (`engine-metrics/v1`, `sweep-checkpoint/v1`), the protocol vendors
//! no serde: requests and responses are parsed by a small
//! recursive-descent pass over exactly the JSON grammar the two ends
//! emit, and written by hand. One request or response is **one JSON
//! object on one line** — the newline is the framing.
//!
//! Numbers are kept as their raw token until a caller asks for a
//! typed value, so `u64`-range integers stay exact and `f64`s
//! round-trip bit-for-bit (Rust's shortest float formatting, used by
//! [`write_number`], re-parses to the identical bits).

use std::fmt::Write as _;

/// A parsed JSON value over the subset the protocol uses.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Number(String),
    /// A string with escapes resolved.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered object (duplicate keys are a parse error).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value's JSON type name, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// The object's fields, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not an object.
    pub fn fields(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(format!(
                "{what} must be an object, found {}",
                other.type_name()
            )),
        }
    }

    /// The array's items, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not an array.
    pub fn items(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!(
                "{what} must be an array, found {}",
                other.type_name()
            )),
        }
    }

    /// The string's content, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a string.
    pub fn str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(format!(
                "{what} must be a string, found {}",
                other.type_name()
            )),
        }
    }

    /// The number as a `u64`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a non-negative integer
    /// in `u64` range.
    pub fn u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Number(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what} must be a non-negative integer, found {raw}")),
            other => Err(format!(
                "{what} must be a number, found {}",
                other.type_name()
            )),
        }
    }

    /// The number as a finite `f64`, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a finite number.
    pub fn f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(raw) => match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(v),
                _ => Err(format!("{what} must be a finite number, found {raw}")),
            },
            other => Err(format!(
                "{what} must be a number, found {}",
                other.type_name()
            )),
        }
    }

    /// The boolean, or an error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a boolean.
    pub fn bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!(
                "{what} must be a boolean, found {}",
                other.type_name()
            )),
        }
    }
}

/// Looks up a required field inside a named object.
///
/// # Errors
///
/// Returns a message when the field is absent.
pub fn field<'a>(
    fields: &'a [(String, Json)],
    key: &str,
    within: &str,
) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{within} is missing required field {key:?}"))
}

/// Looks up an optional field inside an object.
#[must_use]
pub fn field_opt<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a byte-offset-tagged message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after the value"));
    }
    Ok(value)
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as its shortest round-trip token — the
/// `{:?}` formatting, which is always a valid JSON number for finite
/// values and re-parses to identical bits.
pub fn write_number(out: &mut String, value: f64) {
    debug_assert!(value.is_finite());
    let _ = write!(out, "{value:?}");
}

/// Recursive-descent state over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> String {
        format!("byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", char::from(byte))))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.fail("expected digits"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("number is not UTF-8"))?;
        // Syntax check now; range/type checks stay with the typed
        // accessors (e.g. `1e999` scans fine but is rejected as a
        // non-finite f64).
        if raw.parse::<f64>().is_err() {
            return Err(self.fail("malformed number"));
        }
        Ok(Json::Number(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'u') => {
                            // `\uXXXX` for one BMP scalar (the writer
                            // only emits these for control characters).
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(ch) = hex else {
                                return Err(self.fail("bad \\u escape"));
                            };
                            self.pos += 4;
                            ch
                        }
                        _ => return Err(self.fail("unsupported escape")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("string is not UTF-8"))?;
                    let Some(ch) = rest.chars().next() else {
                        return Err(self.fail("truncated character"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let doc = r#"{"kind": "pwin", "n": 3, "delta": 1.0, "ok": true, "xs": [0.1, -2e-3], "none": null}"#;
        let parsed = parse(doc).unwrap();
        let fields = parsed.fields("root").unwrap();
        assert_eq!(
            field(fields, "kind", "root").unwrap().str("kind").unwrap(),
            "pwin"
        );
        assert_eq!(field(fields, "n", "root").unwrap().u64("n").unwrap(), 3);
        assert_eq!(
            field(fields, "delta", "root").unwrap().f64("d").unwrap(),
            1.0
        );
        assert!(field(fields, "ok", "root").unwrap().bool("ok").unwrap());
        let xs = field(fields, "xs", "root").unwrap().items("xs").unwrap();
        assert_eq!(xs[1].f64("x").unwrap(), -2e-3);
        assert!(field_opt(fields, "missing").is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "[1 2]",
            "nul",
            "\"unterminated",
            "{\"delta\": 1e}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // A lone `-` is not a number.
        assert!(parse("-").is_err());
    }

    #[test]
    fn f64_tokens_round_trip_bitwise() {
        for v in [0.1, 1.0 / 3.0, 0.622, 2.5e-7, f64::MIN_POSITIVE, 0.0] {
            let mut out = String::new();
            write_number(&mut out, v);
            let back = parse(&out).unwrap().f64("v").unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a \"quote\"\nline\t\\end\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.str("s").unwrap(), "a \"quote\"\nline\t\\end\u{1}");
    }

    #[test]
    fn typed_accessors_name_the_offender() {
        let v = parse("{\"n\": \"three\"}").unwrap();
        let fields = v.fields("root").unwrap();
        let err = field(fields, "n", "root").unwrap().u64("n").unwrap_err();
        assert!(err.contains("n must be a number"), "{err}");
        let err = v.items("root").unwrap_err();
        assert!(err.contains("root must be an array"), "{err}");
    }
}
