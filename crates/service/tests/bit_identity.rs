//! The daemon's determinism contract, property-tested over real TCP:
//!
//! * cache-served analytic queries are bit-identical to a cold,
//!   single-threaded `EvalContext` evaluation of the same query;
//! * daemon-served Monte-Carlo runs are bit-identical to a direct
//!   `Simulation::run` with the same `(trials, seed, batch_size)` —
//!   even though the daemon runs pooled on two workers and the direct
//!   run is sequential, because batch RNG streams are pure functions
//!   of `(seed, batch)`.
//!
//! One daemon serves every generated case: each case opens a fresh
//! connection, so the cache is *warm* for repeated shapes — exactly
//! the regime the identity must hold in.

use proptest::prelude::*;
use proptest::TestCaseError;
use service::{Client, Outcome, Request, RuleSpec, Service, ServiceConfig};
use simulator::Simulation;
use std::sync::OnceLock;
use uniform_sums::EvalContext;

/// The shared daemon (never shut down: it lives for the test
/// process). Its config pins the batch size the direct runs use.
fn daemon() -> &'static Service {
    static DAEMON: OnceLock<Service> = OnceLock::new();
    DAEMON.get_or_init(|| Service::start(ServiceConfig::default()).expect("daemon start"))
}

fn connect() -> Client {
    Client::connect(daemon().local_addr()).expect("connect to test daemon")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn served_threshold_pwin_is_bit_identical_to_cold_eval(
        params in proptest::collection::vec(0.0..1.0f64, 2..6),
        delta in 0.05..2.0f64,
    ) {
        let response = connect()
            .roundtrip(Request::PWin {
                delta,
                rule: RuleSpec::threshold(params.clone()),
            })
            .expect("round trip");
        let Ok(Outcome::PWin { value, .. }) = response.outcome else {
            return Err(TestCaseError::fail("expected a pwin answer"));
        };
        let mut cold = EvalContext::new();
        let direct =
            decision::winning_probability_threshold_in(&mut cold, &params, &delta).unwrap();
        prop_assert_eq!(value.to_bits(), direct.to_bits());
    }

    #[test]
    fn served_oblivious_pwin_is_bit_identical_to_cold_eval(
        params in proptest::collection::vec(0.0..1.0f64, 2..6),
        delta in 0.05..2.0f64,
    ) {
        let response = connect()
            .roundtrip(Request::PWin {
                delta,
                rule: RuleSpec::oblivious(params.clone()),
            })
            .expect("round trip");
        let Ok(Outcome::PWin { value, .. }) = response.outcome else {
            return Err(TestCaseError::fail("expected a pwin answer"));
        };
        let mut cold = EvalContext::new();
        let direct =
            decision::winning_probability_oblivious_in(&mut cold, &params, &delta).unwrap();
        prop_assert_eq!(value.to_bits(), direct.to_bits());
    }

    #[test]
    fn served_sweep_is_bit_identical_to_library_curve(
        n in 2usize..6,
        grid in 2usize..40,
        delta in 0.1..2.0f64,
    ) {
        let response = connect()
            .roundtrip(Request::Sweep { n, delta, grid })
            .expect("round trip");
        let Ok(Outcome::Sweep { points, .. }) = response.outcome else {
            return Err(TestCaseError::fail("expected a sweep answer"));
        };
        let library = simulator::sweep_threshold_analytic(n, delta, grid).unwrap();
        prop_assert_eq!(points.len(), library.len());
        for ((x, p), l) in points.iter().zip(&library) {
            prop_assert_eq!(x.to_bits(), l.x.to_bits());
            prop_assert_eq!(p.to_bits(), l.probability.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_monte_carlo_is_bit_identical_to_direct_run(
        seed in any::<u64>(),
        trials in 1u64..60_000,
        beta in 0.0..1.0f64,
    ) {
        let response = connect()
            .roundtrip(Request::Simulate {
                delta: 1.0,
                trials,
                seed,
                rule: RuleSpec::threshold(vec![beta, beta, beta]),
            })
            .expect("round trip");
        let Ok(Outcome::Simulate { wins, trials: served }) = response.outcome else {
            return Err(TestCaseError::fail("expected a simulate answer"));
        };
        // Direct run: same (trials, seed, batch_size) but sequential,
        // while the daemon pools onto two workers — the counts must
        // match regardless, batch streams being functions of
        // (seed, batch) only.
        let rule = decision::SingleThresholdAlgorithm::from_f64(&[beta, beta, beta]).unwrap();
        let direct = Simulation::new(trials, seed)
            .try_with_batch_size(ServiceConfig::default().batch_size)
            .unwrap()
            .with_threads(1)
            .run(&rule, 1.0);
        prop_assert_eq!(wins, direct.wins);
        prop_assert_eq!(served, direct.trials);
        // And the client-side report rebuild goes through the same
        // constructor a direct run uses.
        let report = Outcome::Simulate { wins, trials: served }.report().unwrap();
        prop_assert_eq!(report.estimate.to_bits(), direct.estimate.to_bits());
    }
}
