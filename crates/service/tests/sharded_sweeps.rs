//! Served sharded sweeps: the `sweep_mc` fan-out path and the
//! `shards` ledger query.
//!
//! A daemon configured without a worker binary must refuse `sweep_mc`
//! with a typed query error (never spawn anything); a configured
//! daemon must serve the *identical* per-point win counts a direct
//! single-process library sweep produces, because the orchestrator's
//! merge is bit-identical by construction.

use service::{Client, Outcome, Request, Service, ServiceConfig, ShardedSweepConfig};
use std::path::PathBuf;

/// The `nocomm-shard` binary if this test run built it (workspace
/// `cargo test` builds every member's bins into `target/<profile>/`).
/// Absent in a `-p service`-only invocation, where the fan-out legs
/// are skipped — the orchestrator's own tests cover them.
fn shard_worker() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?; // target/<profile>/deps/<test>
    let profile_dir = exe.parent()?.parent()?;
    let candidate = profile_dir.join("nocomm-shard");
    candidate.is_file().then_some(candidate)
}

#[test]
fn unconfigured_daemons_refuse_sweep_mc_with_a_query_error() {
    let daemon = Service::start(ServiceConfig::default()).expect("daemon start");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let response = client
        .roundtrip(Request::SweepMc {
            n: 3,
            delta: 1.0,
            grid: 8,
            trials: 1_000,
            seed: 5,
        })
        .expect("round trip");
    let Err(message) = response.outcome else {
        panic!("sweep_mc must be a query error without a worker binary");
    };
    assert!(message.contains("no worker binary"), "{message}");
    daemon.shutdown();
}

#[test]
fn the_shard_ledger_starts_at_zero() {
    let daemon = Service::start(ServiceConfig::default()).expect("daemon start");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let response = client.roundtrip(Request::Shards).expect("round trip");
    assert_eq!(
        response.outcome,
        Ok(Outcome::Shards {
            issued: 0,
            completed: 0,
            reissued: 0,
            killed: 0,
            corrupt: 0,
        })
    );
    daemon.shutdown();
}

#[test]
fn served_sweeps_match_the_direct_library_sweep_bit_for_bit() {
    let Some(worker) = shard_worker() else {
        return; // no nocomm-shard binary in this invocation
    };
    let scratch = std::env::temp_dir().join(format!("nocomm-served-sweeps-{}", std::process::id()));
    let config = ServiceConfig {
        sweeps: Some(ShardedSweepConfig {
            worker,
            dir: scratch.clone(),
            shards: 3,
        }),
        ..ServiceConfig::default()
    };
    let daemon = Service::start(config).expect("daemon start");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");

    let (n, delta, grid, trials, seed) = (2_usize, 1.0_f64, 5_usize, 1_000_u64, 31_u64);
    let response = client
        .roundtrip(Request::SweepMc {
            n,
            delta,
            grid,
            trials,
            seed,
        })
        .expect("round trip");
    let Ok(Outcome::SweepMc {
        trials: served_trials,
        points,
    }) = response.outcome
    else {
        panic!("sweep_mc failed: {:?}", response.outcome);
    };
    assert_eq!(served_trials, trials);

    let direct = simulator::sweep_threshold(n, delta, grid, trials, seed).unwrap();
    assert_eq!(points.len(), direct.len());
    for (served, direct) in points.iter().zip(&direct) {
        assert_eq!(served.0.to_bits(), direct.x.to_bits(), "β diverged");
        assert_eq!(
            served.1, direct.report.wins,
            "wins diverged at β = {}",
            direct.x
        );
    }

    // The supervision ledger saw the fan-out.
    let response = client
        .roundtrip(Request::Shards)
        .expect("ledger round trip");
    let Ok(Outcome::Shards {
        issued, completed, ..
    }) = response.outcome
    else {
        panic!("shards query failed");
    };
    assert_eq!(completed, 3);
    assert!(issued >= 3);

    daemon.shutdown();
    std::fs::remove_dir_all(&scratch).ok();
}
