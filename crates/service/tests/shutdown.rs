//! Graceful-shutdown behavior: in-flight requests drain to complete
//! answers, idle connections cannot stall the drain, new connections
//! are refused once the daemon is down, and the worker pool closes
//! with the last engine handle (dropping the daemon cannot hang).

use service::{Client, Outcome, Request, RuleSpec, Service, ServiceConfig};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start() -> Service {
    Service::start(ServiceConfig::default()).expect("daemon start")
}

#[test]
fn remote_shutdown_acknowledges_then_drains() {
    let daemon = start();
    let addr = daemon.local_addr();

    // An in-flight Monte-Carlo request on its own connection: big
    // enough to still be running when the shutdown lands.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.roundtrip(Request::Simulate {
            delta: 1.0,
            trials: 400_000,
            seed: 11,
            rule: RuleSpec::threshold(vec![0.622, 0.622, 0.622]),
        })
    });
    // An idle connection that never sends anything: it must not be
    // able to stall the drain beyond the poll interval.
    let idle = TcpStream::connect(addr).expect("idle connect");

    std::thread::sleep(Duration::from_millis(20));
    let mut controller = Client::connect(addr).expect("controller connect");
    let ack = controller
        .roundtrip(Request::Shutdown)
        .expect("shutdown round trip");
    assert_eq!(ack.outcome, Ok(Outcome::ShuttingDown));

    // The in-flight request still completes with a full answer.
    let response = worker
        .join()
        .expect("client thread")
        .expect("in-flight request must drain to a response");
    match response.outcome {
        Ok(Outcome::Simulate { wins, trials }) => {
            assert_eq!(trials, 400_000);
            assert!(wins <= trials);
        }
        other => panic!("in-flight request answered {other:?}"),
    }

    // wait() returns: every connection (including the idle one)
    // drains without being nudged.
    daemon.wait();
    drop(idle);

    // The listener is gone; fresh connections are refused (or, at
    // worst, racily accepted and immediately closed without service).
    if TcpStream::connect(addr).is_ok() {
        let mut probe = Client::connect(addr).expect("probe connect");
        assert!(
            probe.roundtrip(Request::Shutdown).is_err(),
            "a post-shutdown connection must not be served"
        );
    }
}

#[test]
fn shutdown_racing_concurrent_sweeps_completes_all_accepted_work() {
    let daemon = start();
    let addr = daemon.local_addr();

    // A burst of concurrent sweep and simulate requests, each on its
    // own connection, all still in flight when the shutdown lands.
    // Every request the daemon *accepted* must drain to a complete,
    // correct answer — drain means finish the work, not drop it.
    let workers: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                if i % 2 == 0 {
                    client.roundtrip(Request::Sweep {
                        n: 3 + i / 2,
                        delta: 1.0,
                        grid: 64,
                    })
                } else {
                    client.roundtrip(Request::Simulate {
                        delta: 1.0,
                        trials: 200_000,
                        seed: 7 + i as u64,
                        rule: RuleSpec::threshold(vec![0.622, 0.622, 0.622]),
                    })
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(10));
    let mut controller = Client::connect(addr).expect("controller connect");
    let ack = controller
        .roundtrip(Request::Shutdown)
        .expect("shutdown round trip");
    assert_eq!(ack.outcome, Ok(Outcome::ShuttingDown));

    let mut answered = 0;
    for (i, worker) in workers.into_iter().enumerate() {
        // A request that raced the drain window may be refused at the
        // transport level (connection dropped before the daemon read
        // it) — but an accepted one must never get a partial answer.
        if let Ok(response) = worker.join().expect("client thread") {
            match response.outcome {
                Ok(Outcome::Sweep { points, .. }) => {
                    assert_eq!(points.len(), 65, "request {i} drained to a truncated sweep");
                }
                Ok(Outcome::Simulate { wins, trials }) => {
                    assert_eq!(trials, 200_000, "request {i} drained short");
                    assert!(wins <= trials);
                }
                other => panic!("request {i} answered {other:?}"),
            }
            answered += 1;
        }
    }
    assert!(answered >= 1, "the pre-shutdown burst was entirely lost");
    daemon.wait();
}

#[test]
fn local_shutdown_with_idle_connection_is_bounded() {
    let daemon = start();
    let addr = daemon.local_addr();
    let _idle = TcpStream::connect(addr).expect("idle connect");
    let started = Instant::now();
    daemon.shutdown();
    // Drain latency for idle connections is bounded by the poll
    // interval (50ms default), with generous headroom for a loaded
    // single-CPU box.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle connection stalled the drain for {:?}",
        started.elapsed()
    );
}

#[test]
fn dropping_the_daemon_shuts_it_down() {
    let daemon = start();
    let addr = daemon.local_addr();
    drop(daemon); // Drop triggers the same drain as shutdown()
    assert!(
        TcpStream::connect(addr).is_err() || {
            let mut probe = Client::connect(addr).expect("probe connect");
            probe.roundtrip(Request::Shutdown).is_err()
        },
        "a dropped daemon kept serving"
    );
}

#[test]
fn requests_after_shutdown_ack_on_same_connection_get_eof() {
    let daemon = start();
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let ack = client.roundtrip(Request::Shutdown).expect("ack");
    assert_eq!(ack.outcome, Ok(Outcome::ShuttingDown));
    // The daemon closes the connection after acknowledging.
    assert!(client
        .roundtrip(Request::Sweep {
            n: 3,
            delta: 1.0,
            grid: 8
        })
        .is_err());
    daemon.wait();
}
