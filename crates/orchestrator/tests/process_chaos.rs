//! Process-level chaos: worker processes are SIGKILLed mid-shard,
//! stalled until the supervisor shoots them, and made to hand back
//! corrupt output — and the merged sweep must still be *byte*-identical
//! to what a single uninterrupted process produces.

use orchestrator::{
    run_sweep, run_sweep_with_metrics, OrchestratorConfig, OrchestratorError, ProcChaosPlan,
    ProcFault, WorkerSpec,
};
use simulator::{sweep_threshold_checkpointed, EngineMetrics, SweepCheckpoint};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir()
            .join("nocomm-process-chaos")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

const N: usize = 2;
const DELTA: f64 = 1.0;
const GRID: usize = 5;
const TRIALS: u64 = 1_000;
const SEED: u64 = 23;

fn request() -> SweepCheckpoint {
    SweepCheckpoint::new(N, DELTA, GRID, TRIALS, SEED)
}

/// The checkpoint document a single fault-free process writes.
fn single_process_document(scratch: &Scratch) -> String {
    let path = scratch.0.join("single.json");
    sweep_threshold_checkpointed(N, DELTA, GRID, TRIALS, SEED, &path).unwrap();
    std::fs::read_to_string(&path).unwrap()
}

fn config(scratch: &Scratch, shards: usize) -> OrchestratorConfig {
    let worker = WorkerSpec::new(env!("CARGO_BIN_EXE_nocomm-shard"));
    let mut cfg = OrchestratorConfig::new(shards, scratch.0.join("shards"), worker);
    // Workers finish these tiny shards in tens of milliseconds, so the
    // stall detector can be aggressive without false positives.
    cfg.stall_timeout = Duration::from_millis(800);
    cfg.shard_deadline = Duration::from_secs(20);
    cfg.backoff_base = Duration::from_millis(10);
    cfg
}

#[test]
fn fault_free_orchestration_is_bit_identical_to_one_process() {
    let scratch = Scratch::new("fault-free");
    let baseline = single_process_document(&scratch);
    for shards in [1, 2, 3, 6] {
        let merged = run_sweep(&request(), &config(&scratch, shards)).unwrap();
        assert_eq!(
            merged.to_json(),
            baseline,
            "{shards} shards diverged from the single-process sweep"
        );
        std::fs::remove_dir_all(scratch.0.join("shards")).ok();
    }
}

#[test]
fn killed_stalled_and_corrupt_workers_still_merge_bit_identically() {
    let scratch = Scratch::new("explicit-chaos");
    let baseline = single_process_document(&scratch);
    let mut cfg = config(&scratch, 3);
    cfg.chaos = Some(
        ProcChaosPlan::new()
            .inject(0, 0, ProcFault::Kill { after: 1 })
            .inject(1, 0, ProcFault::Stall { after: 1 })
            .inject(2, 0, ProcFault::Corrupt),
    );
    let metrics = Arc::new(EngineMetrics::new());
    let merged = run_sweep_with_metrics(&request(), &cfg, metrics.clone()).unwrap();
    assert_eq!(merged.to_json(), baseline);
    let snap = metrics.snapshot();
    assert_eq!(snap.shard_completed, 3);
    assert_eq!(
        snap.shard_reissued, 3,
        "each faulty first attempt re-issued once"
    );
    assert_eq!(snap.shard_issued, 6);
    assert!(snap.shard_killed >= 1, "the stalled worker must be shot");
    assert!(
        snap.shard_corrupt >= 1,
        "the corrupt hand-back must be flagged"
    );
}

#[test]
fn seeded_chaos_plans_replay_and_always_merge_bit_identically() {
    let scratch = Scratch::new("seeded-chaos");
    let baseline = single_process_document(&scratch);
    for chaos_seed in [1_u64, 2, 3] {
        let plan = ProcChaosPlan::seeded(chaos_seed, 3, 1);
        assert_eq!(plan, ProcChaosPlan::seeded(chaos_seed, 3, 1));
        let mut cfg = config(&scratch, 3);
        cfg.respawn_budget = 3;
        cfg.chaos = Some(plan);
        let merged = run_sweep(&request(), &cfg).unwrap();
        assert_eq!(
            merged.to_json(),
            baseline,
            "chaos seed {chaos_seed} diverged"
        );
        std::fs::remove_dir_all(scratch.0.join("shards")).ok();
    }
}

#[test]
fn a_restarted_coordinator_adopts_surviving_shard_files() {
    let scratch = Scratch::new("restart");
    let baseline = single_process_document(&scratch);
    // First coordinator: all three shards crash *after* finishing one
    // point each, then their replacements finish the job...
    let mut cfg = config(&scratch, 3);
    cfg.chaos = Some(
        ProcChaosPlan::new()
            .inject(0, 0, ProcFault::Kill { after: 1 })
            .inject(1, 0, ProcFault::Kill { after: 1 })
            .inject(2, 0, ProcFault::Kill { after: 1 }),
    );
    let merged = run_sweep(&request(), &cfg).unwrap();
    assert_eq!(merged.to_json(), baseline);
    // ...and a second coordinator over the same directory finds the
    // complete shard files and merges without spawning anything: a
    // worker path that cannot execute proves no process was needed.
    let mut second = config(&scratch, 3);
    second.worker = WorkerSpec::new("/nonexistent/worker");
    let merged = run_sweep(&request(), &second).unwrap();
    assert_eq!(merged.to_json(), baseline);
}

#[test]
fn a_shard_that_always_crashes_exhausts_its_budget() {
    let scratch = Scratch::new("exhausted");
    let mut cfg = config(&scratch, 2);
    cfg.respawn_budget = 1;
    // Shard 1 dies instantly on both attempts it is allowed.
    cfg.chaos = Some(
        ProcChaosPlan::new()
            .inject(1, 0, ProcFault::Kill { after: 0 })
            .inject(1, 1, ProcFault::Kill { after: 0 }),
    );
    let err = run_sweep(&request(), &cfg).unwrap_err();
    let OrchestratorError::ShardExhausted { shard, attempts } = err else {
        panic!("expected ShardExhausted, got {err}");
    };
    assert_eq!(shard, 1);
    assert_eq!(attempts, 2);
}

#[test]
fn the_supervision_ledger_balances_for_clean_runs() {
    let scratch = Scratch::new("ledger");
    let metrics = Arc::new(EngineMetrics::new());
    run_sweep_with_metrics(&request(), &config(&scratch, 3), metrics.clone()).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.shard_issued, 3);
    assert_eq!(snap.shard_completed, 3);
    assert_eq!(snap.shard_reissued, 0);
    assert_eq!(snap.shard_killed, 0);
    assert_eq!(snap.shard_corrupt, 0);
}
