//! Typed orchestration failures.

use simulator::SweepError;
use std::fmt;
use std::io;

/// Everything that can go wrong while supervising a sharded sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum OrchestratorError {
    /// The configuration cannot describe a runnable sweep (zero
    /// shards, more shards than grid points, empty worker path, ...).
    InvalidConfig {
        /// What was wrong with the configuration.
        message: String,
    },
    /// Spawning a worker process failed outright (missing binary,
    /// exhausted PIDs); distinct from a worker that spawned and died,
    /// which is retried under the respawn budget.
    Spawn {
        /// The shard whose worker could not be spawned.
        shard: usize,
        /// The operating-system error.
        source: io::Error,
    },
    /// A shard burned through its entire respawn budget without
    /// producing a complete, valid checkpoint.
    ShardExhausted {
        /// The shard that kept failing.
        shard: usize,
        /// How many worker processes were issued for it in total.
        attempts: u32,
    },
    /// A checkpoint-layer failure (corrupt file, parameter mismatch,
    /// merge gap) that is not attributable to a retryable worker.
    Sweep(SweepError),
    /// Filesystem trouble outside the checkpoint files themselves.
    Io(io::Error),
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::InvalidConfig { message } => {
                write!(f, "invalid orchestrator config: {message}")
            }
            OrchestratorError::Spawn { shard, source } => {
                write!(f, "failed to spawn worker for shard {shard}: {source}")
            }
            OrchestratorError::ShardExhausted { shard, attempts } => write!(
                f,
                "shard {shard} exhausted its respawn budget after {attempts} attempts"
            ),
            OrchestratorError::Sweep(err) => write!(f, "sweep error: {err}"),
            OrchestratorError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::Spawn { source, .. } | OrchestratorError::Io(source) => Some(source),
            OrchestratorError::Sweep(err) => Some(err),
            OrchestratorError::InvalidConfig { .. } | OrchestratorError::ShardExhausted { .. } => {
                None
            }
        }
    }
}

impl From<SweepError> for OrchestratorError {
    fn from(err: SweepError) -> OrchestratorError {
        OrchestratorError::Sweep(err)
    }
}

impl From<io::Error> for OrchestratorError {
    fn from(err: io::Error) -> OrchestratorError {
        OrchestratorError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_name_the_failing_shard() {
        let err = OrchestratorError::ShardExhausted {
            shard: 3,
            attempts: 5,
        };
        let text = err.to_string();
        assert!(text.contains("shard 3"), "{text}");
        assert!(text.contains("5 attempts"), "{text}");
        assert!(err.source().is_none());
    }

    #[test]
    fn sources_chain_through_wrapped_errors() {
        let err = OrchestratorError::Spawn {
            shard: 0,
            source: io::Error::new(io::ErrorKind::NotFound, "no such worker"),
        };
        assert!(err.source().is_some());
        let err: OrchestratorError = SweepError::Corrupt {
            message: "torn".to_owned(),
        }
        .into();
        assert!(matches!(err, OrchestratorError::Sweep(_)));
        assert!(err.source().is_some());
    }
}
