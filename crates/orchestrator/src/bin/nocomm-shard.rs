//! `nocomm-shard`: worker and coordinator CLI for sharded sweeps.
//!
//! Three modes:
//!
//! * `run` — execute one shard of a sweep as a worker process,
//!   checkpointing after every point (the mode [`orchestrator::run_sweep`]
//!   spawns). `--fault` injects a deterministic crash, stall, or
//!   corrupt-output fault for chaos testing.
//! * `sweep` — act as the coordinator: split the grid, spawn workers
//!   (this same binary by default), supervise, merge, and print the
//!   merged curve plus the supervision ledger.
//! * `--smoke` — self-contained end-to-end proof: runs the same sweep
//!   single-process, orchestrated fault-free, and orchestrated under a
//!   kill + stall + corrupt chaos plan, asserts all three merge
//!   byte-identically, and writes a `shard-smoke/v1` report for
//!   `cargo xtask shard-check`.

use orchestrator::{
    run_sweep_with_metrics, OrchestratorConfig, ProcChaosPlan, ProcFault, WorkerSpec,
};
use simulator::{
    sweep_threshold_checkpointed, EngineMetrics, ShardSweep, SweepCheckpoint, RNG_STREAM_VERSION,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const HOUR: Duration = Duration::from_hours(1);

const USAGE: &str = "\
nocomm-shard: sharded sweep worker and coordinator

USAGE:
  nocomm-shard run --n N --delta D --grid G --trials T --seed S \\
                   --start K --points P --out FILE [--fault F]
      Run one shard as a worker: points K..K+P of the sweep, with a
      checkpoint written atomically after every point. --fault injects
      kill:J (abort after J new points), stall:J (hang after J new
      points), or corrupt (finish, then trash the file).

  nocomm-shard sweep --n N --delta D --grid G --trials T --seed S \\
                     --shards W --dir DIR [--worker PATH]
                     [--stall-ms MS] [--deadline-ms MS] [--budget R]
      Coordinate W worker processes over the grid and print the merged
      curve (byte-identical to a single-process sweep) plus the
      supervision ledger.

  nocomm-shard --smoke [--out FILE]
      End-to-end self test: single-process vs fault-free orchestrated
      vs chaos-orchestrated (kill + stall + corrupt), asserting
      bit-identical merges; writes a shard-smoke/v1 report to FILE.
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("nocomm-shard: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => worker(&args[1..]),
        Some("sweep") => coordinate(&args[1..]),
        Some("--smoke") => smoke(&args[1..]),
        Some("--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        _ => Err(format!("expected a mode\n{USAGE}")),
    }
}

/// Collects `--flag value` pairs, rejecting unknown flags.
fn parse_flags(args: &[String], known: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if !known.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag}\n{USAGE}"));
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        pairs.push((flag.clone(), value.clone()));
    }
    Ok(pairs)
}

fn lookup<'a>(pairs: &'a [(String, String)], flag: &str) -> Option<&'a str> {
    pairs
        .iter()
        .rev()
        .find(|(f, _)| f == flag)
        .map(|(_, v)| v.as_str())
}

fn require<'a>(pairs: &'a [(String, String)], flag: &str) -> Result<&'a str, String> {
    lookup(pairs, flag).ok_or_else(|| format!("missing required flag {flag}"))
}

fn parsed<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("could not parse {flag} value {text:?}"))
}

/// Worker mode: run one shard, optionally injecting a fault.
fn worker(args: &[String]) -> Result<(), String> {
    let pairs = parse_flags(
        args,
        &[
            "--n", "--delta", "--grid", "--trials", "--seed", "--start", "--points", "--out",
            "--fault",
        ],
    )?;
    let n: usize = parsed(require(&pairs, "--n")?, "--n")?;
    let delta: f64 = parsed(require(&pairs, "--delta")?, "--delta")?;
    let grid: usize = parsed(require(&pairs, "--grid")?, "--grid")?;
    let trials: u64 = parsed(require(&pairs, "--trials")?, "--trials")?;
    let seed: u64 = parsed(require(&pairs, "--seed")?, "--seed")?;
    let start: usize = parsed(require(&pairs, "--start")?, "--start")?;
    let points: usize = parsed(require(&pairs, "--points")?, "--points")?;
    let out = PathBuf::from(require(&pairs, "--out")?);
    let fault = lookup(&pairs, "--fault")
        .map(ProcFault::parse)
        .transpose()?;

    let requested = SweepCheckpoint::shard(n, delta, grid, trials, seed, start, points);
    let mut sweep = ShardSweep::open(requested, &out).map_err(|e| e.to_string())?;
    let mut fresh = 0_usize;
    loop {
        match fault {
            Some(ProcFault::Kill { after }) if fresh >= after => {
                // The moral equivalent of `kill -9`: no unwinding, no
                // cleanup — whatever the last atomic rename left is
                // the crash site the replacement resumes from.
                std::process::abort();
            }
            Some(ProcFault::Stall { after }) if fresh >= after && !sweep.is_complete() => {
                // Hang without touching the file; the coordinator's
                // stall detector must SIGKILL us.
                loop {
                    std::thread::sleep(HOUR);
                }
            }
            _ => {}
        }
        if !sweep.step().map_err(|e| e.to_string())? {
            break;
        }
        fresh += 1;
    }
    if matches!(fault, Some(ProcFault::Corrupt)) {
        // Finish, then hand back garbage with a clean exit status:
        // only output validation can catch this kind of traitor.
        std::fs::write(
            &out,
            b"{\"schema\": \"sweep-checkpoint/v1\", \"n\": garbage",
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Coordinator mode: fan a sweep out over worker processes.
fn coordinate(args: &[String]) -> Result<(), String> {
    let pairs = parse_flags(
        args,
        &[
            "--n",
            "--delta",
            "--grid",
            "--trials",
            "--seed",
            "--shards",
            "--dir",
            "--worker",
            "--stall-ms",
            "--deadline-ms",
            "--budget",
        ],
    )?;
    let n: usize = parsed(require(&pairs, "--n")?, "--n")?;
    let delta: f64 = parsed(require(&pairs, "--delta")?, "--delta")?;
    let grid: usize = parsed(require(&pairs, "--grid")?, "--grid")?;
    let trials: u64 = parsed(require(&pairs, "--trials")?, "--trials")?;
    let seed: u64 = parsed(require(&pairs, "--seed")?, "--seed")?;
    let shards: usize = parsed(require(&pairs, "--shards")?, "--shards")?;
    let dir = PathBuf::from(require(&pairs, "--dir")?);
    let worker = match lookup(&pairs, "--worker") {
        Some(path) => WorkerSpec::new(path),
        None => WorkerSpec::current_exe().map_err(|e| e.to_string())?,
    };

    let mut config = OrchestratorConfig::new(shards, dir, worker);
    if let Some(ms) = lookup(&pairs, "--stall-ms") {
        config.stall_timeout = Duration::from_millis(parsed(ms, "--stall-ms")?);
    }
    if let Some(ms) = lookup(&pairs, "--deadline-ms") {
        config.shard_deadline = Duration::from_millis(parsed(ms, "--deadline-ms")?);
    }
    if let Some(budget) = lookup(&pairs, "--budget") {
        config.respawn_budget = parsed(budget, "--budget")?;
    }

    let request = SweepCheckpoint::new(n, delta, grid, trials, seed);
    let metrics = Arc::new(EngineMetrics::new());
    let merged =
        run_sweep_with_metrics(&request, &config, metrics.clone()).map_err(|e| e.to_string())?;
    for point in merged.points() {
        println!("{:?}\t{:?}", point.x, point.report.estimate);
    }
    let snap = metrics.snapshot();
    println!(
        "# shards issued={} completed={} reissued={} killed={} corrupt={}",
        snap.shard_issued,
        snap.shard_completed,
        snap.shard_reissued,
        snap.shard_killed,
        snap.shard_corrupt
    );
    Ok(())
}

/// The ledger slice of one orchestrated smoke run.
struct Leg {
    bit_identical: bool,
    issued: u64,
    completed: u64,
    reissued: u64,
    killed: u64,
    corrupt: u64,
}

/// Runs one orchestrated sweep into `dir` and compares the merged
/// document against `baseline` byte for byte.
fn smoke_leg(
    request: &SweepCheckpoint,
    dir: &PathBuf,
    chaos: Option<ProcChaosPlan>,
    baseline: &str,
) -> Result<Leg, String> {
    std::fs::remove_dir_all(dir).ok();
    let worker = WorkerSpec::current_exe().map_err(|e| e.to_string())?;
    let mut config = OrchestratorConfig::new(3, dir, worker);
    config.stall_timeout = Duration::from_millis(800);
    config.shard_deadline = Duration::from_secs(10);
    config.backoff_base = Duration::from_millis(20);
    config.chaos = chaos;
    let metrics = Arc::new(EngineMetrics::new());
    let merged =
        run_sweep_with_metrics(request, &config, metrics.clone()).map_err(|e| e.to_string())?;
    std::fs::remove_dir_all(dir).ok();
    let snap = metrics.snapshot();
    Ok(Leg {
        bit_identical: merged.to_json() == baseline,
        issued: snap.shard_issued,
        completed: snap.shard_completed,
        reissued: snap.shard_reissued,
        killed: snap.shard_killed,
        corrupt: snap.shard_corrupt,
    })
}

fn leg_json(leg: &Leg) -> String {
    format!(
        "{{\"bit_identical\": {}, \"issued\": {}, \"completed\": {}, \"reissued\": {}, \"killed\": {}, \"corrupt\": {}}}",
        leg.bit_identical, leg.issued, leg.completed, leg.reissued, leg.killed, leg.corrupt
    )
}

/// Smoke mode: prove crash-surviving orchestration end to end.
fn smoke(args: &[String]) -> Result<(), String> {
    let pairs = parse_flags(args, &["--out"])?;
    let (n, delta, grid, trials, seed, shards) =
        (3_usize, 1.0_f64, 5_usize, 2_000_u64, 11_u64, 3_usize);
    let scratch = std::env::temp_dir().join(format!("nocomm-shard-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;

    // Baseline: one uninterrupted process.
    let single = scratch.join("single.json");
    std::fs::remove_file(&single).ok();
    sweep_threshold_checkpointed(n, delta, grid, trials, seed, &single)
        .map_err(|e| e.to_string())?;
    let baseline = std::fs::read_to_string(&single).map_err(|e| e.to_string())?;

    let request = SweepCheckpoint::new(n, delta, grid, trials, seed);
    let fault_free = smoke_leg(&request, &scratch.join("fault-free"), None, &baseline)?;
    println!(
        "fault-free: bit_identical={} issued={} completed={}",
        fault_free.bit_identical, fault_free.issued, fault_free.completed
    );

    // One fault of each kind, one per shard, all on the first attempt.
    let plan = ProcChaosPlan::new()
        .inject(0, 0, ProcFault::Kill { after: 1 })
        .inject(1, 0, ProcFault::Stall { after: 1 })
        .inject(2, 0, ProcFault::Corrupt);
    let chaotic = smoke_leg(&request, &scratch.join("chaotic"), Some(plan), &baseline)?;
    println!(
        "chaotic:    bit_identical={} issued={} completed={} reissued={} killed={} corrupt={}",
        chaotic.bit_identical,
        chaotic.issued,
        chaotic.completed,
        chaotic.reissued,
        chaotic.killed,
        chaotic.corrupt
    );
    std::fs::remove_dir_all(&scratch).ok();

    let ok = fault_free.bit_identical
        && chaotic.bit_identical
        && fault_free.reissued == 0
        && chaotic.killed >= 1
        && chaotic.corrupt >= 1
        && chaotic.reissued >= 3;
    let report = format!(
        "{{\"schema\": \"shard-smoke/v1\", \"rng_stream_version\": {RNG_STREAM_VERSION}, \
         \"n\": {n}, \"grid\": {grid}, \"shards\": {shards}, \"trials\": {trials}, \
         \"fault_free\": {}, \"chaotic\": {}}}\n",
        leg_json(&fault_free),
        leg_json(&chaotic)
    );
    if let Some(out) = lookup(&pairs, "--out") {
        std::fs::write(out, &report).map_err(|e| e.to_string())?;
        println!("report written to {out}");
    } else {
        print!("{report}");
    }
    if ok {
        println!("smoke OK: all three runs merged byte-identically");
        Ok(())
    } else {
        Err("smoke FAILED: merges diverged or faults were not exercised".to_owned())
    }
}
