//! Deterministic process-level fault injection.
//!
//! A [`ProcChaosPlan`] maps `(shard, attempt)` to the [`ProcFault`]
//! that attempt's worker process must inject into itself. The plan is
//! carried to the worker on its command line (`--fault kill:2`), so
//! the coordinator never needs shared state with the victim — and a
//! seeded plan replays bit-for-bit, which is what lets the chaos
//! property tests assert byte-identical merges under crashes.

use std::collections::BTreeMap;

/// A fault a worker process injects into itself while running a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcFault {
    /// Abort the process (no unwinding, no cleanup — the moral
    /// equivalent of `kill -9`) after completing `after` new points.
    Kill {
        /// Number of fresh points to complete before aborting.
        after: usize,
    },
    /// Stop making progress after `after` new points and sleep
    /// forever; the coordinator's stall detector must notice and
    /// `SIGKILL` the worker.
    Stall {
        /// Number of fresh points to complete before hanging.
        after: usize,
    },
    /// Finish the shard, then overwrite the checkpoint with garbage
    /// and exit cleanly — exercising the corrupt-output path.
    Corrupt,
}

impl ProcFault {
    /// Renders the fault as the worker's `--fault` argument.
    #[must_use]
    pub fn to_arg(self) -> String {
        match self {
            ProcFault::Kill { after } => format!("kill:{after}"),
            ProcFault::Stall { after } => format!("stall:{after}"),
            ProcFault::Corrupt => "corrupt".to_owned(),
        }
    }

    /// Parses a `--fault` argument back into a fault.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `text` is not one of
    /// `kill:N`, `stall:N`, or `corrupt`.
    pub fn parse(text: &str) -> Result<ProcFault, String> {
        if text == "corrupt" {
            return Ok(ProcFault::Corrupt);
        }
        let (kind, count) = text
            .split_once(':')
            .ok_or_else(|| format!("unknown fault {text:?}"))?;
        let after: usize = count
            .parse()
            .map_err(|_| format!("bad fault count in {text:?}"))?;
        match kind {
            "kill" => Ok(ProcFault::Kill { after }),
            "stall" => Ok(ProcFault::Stall { after }),
            _ => Err(format!("unknown fault kind {kind:?}")),
        }
    }
}

/// A replayable schedule of worker faults keyed by `(shard, attempt)`.
///
/// Attempt `0` is the first process issued for a shard; each re-issue
/// increments the attempt, so a plan can make the first attempt crash
/// and leave the replacement healthy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcChaosPlan {
    faults: BTreeMap<(usize, u32), ProcFault>,
}

impl ProcChaosPlan {
    /// An empty plan: every worker runs fault-free.
    #[must_use]
    pub fn new() -> ProcChaosPlan {
        ProcChaosPlan::default()
    }

    /// Schedules `fault` for attempt `attempt` of shard `shard`,
    /// replacing any previous entry for that slot.
    #[must_use]
    pub fn inject(mut self, shard: usize, attempt: u32, fault: ProcFault) -> ProcChaosPlan {
        self.faults.insert((shard, attempt), fault);
        self
    }

    /// Derives a deterministic plan from `seed`: each of the `shards`
    /// shards gets up to `max_faults_per_shard` consecutive faulty
    /// first attempts, with kinds mixed from the seed. The same seed
    /// always yields the same plan.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, max_faults_per_shard: u32) -> ProcChaosPlan {
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut plan = ProcChaosPlan::new();
        for shard in 0..shards {
            let h = mix(seed ^ ((shard as u64) << 32));
            let count = u32::try_from(h % u64::from(max_faults_per_shard + 1)).unwrap_or(0);
            for attempt in 0..count {
                let f = mix(h ^ u64::from(attempt).wrapping_mul(0xd134_2543_de82_ef95));
                let fault = match f % 3 {
                    0 => ProcFault::Kill {
                        after: usize::try_from((f >> 8) % 2).unwrap_or(0),
                    },
                    1 => ProcFault::Stall {
                        after: usize::try_from((f >> 8) % 2).unwrap_or(0),
                    },
                    _ => ProcFault::Corrupt,
                };
                plan = plan.inject(shard, attempt, fault);
            }
        }
        plan
    }

    /// The fault scheduled for `(shard, attempt)`, if any.
    #[must_use]
    pub fn fault_for(&self, shard: usize, attempt: u32) -> Option<ProcFault> {
        self.faults.get(&(shard, attempt)).copied()
    }

    /// True when no faults are scheduled at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_round_trip_through_their_cli_argument() {
        for fault in [
            ProcFault::Kill { after: 0 },
            ProcFault::Kill { after: 3 },
            ProcFault::Stall { after: 1 },
            ProcFault::Corrupt,
        ] {
            assert_eq!(ProcFault::parse(&fault.to_arg()), Ok(fault));
        }
    }

    #[test]
    fn malformed_fault_arguments_are_rejected() {
        for bad in ["", "kill", "kill:", "kill:x", "melt:2", "corrupt:1"] {
            assert!(ProcFault::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn injected_faults_are_looked_up_by_shard_and_attempt() {
        let plan = ProcChaosPlan::new()
            .inject(0, 0, ProcFault::Kill { after: 1 })
            .inject(2, 1, ProcFault::Corrupt);
        assert_eq!(plan.fault_for(0, 0), Some(ProcFault::Kill { after: 1 }));
        assert_eq!(plan.fault_for(0, 1), None);
        assert_eq!(plan.fault_for(2, 1), Some(ProcFault::Corrupt));
        assert_eq!(plan.fault_for(1, 0), None);
        assert!(!plan.is_empty());
        assert!(ProcChaosPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_replay_exactly() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = ProcChaosPlan::seeded(seed, 5, 3);
            let b = ProcChaosPlan::seeded(seed, 5, 3);
            assert_eq!(a, b, "seed {seed}");
        }
        // Different seeds should (for these values) differ.
        assert_ne!(
            ProcChaosPlan::seeded(1, 8, 3),
            ProcChaosPlan::seeded(2, 8, 3)
        );
    }

    #[test]
    fn seeded_faults_stay_within_the_budget() {
        let plan = ProcChaosPlan::seeded(7, 6, 2);
        for shard in 0..6 {
            let mut run = 0;
            while plan.fault_for(shard, run).is_some() {
                run += 1;
            }
            assert!(run <= 2, "shard {shard} got {run} faults");
            // Faults are consecutive from attempt 0: nothing beyond.
            assert_eq!(plan.fault_for(shard, run + 1), None);
        }
    }
}
