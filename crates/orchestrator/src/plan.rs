//! Shard planning: cutting a sweep grid into contiguous slices.

/// One contiguous slice of a sweep grid, assigned to one worker
/// process at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index, `0..shards`.
    pub index: usize,
    /// First grid point the shard covers.
    pub start: usize,
    /// Number of grid points the shard covers (at least one).
    pub points: usize,
}

/// Splits the `grid + 1` points of a sweep into `shards` contiguous
/// slices whose sizes differ by at most one (the earlier shards take
/// the remainder). The slices tile the grid exactly: starts are
/// increasing, adjacent, and jointly cover `0..=grid`.
///
/// # Panics
///
/// Panics if `shards` is zero or exceeds `grid + 1` (every shard must
/// cover at least one point); [`run_sweep`](crate::run_sweep) rejects
/// such configurations with a typed error before planning.
#[must_use]
pub fn split_grid(grid: usize, shards: usize) -> Vec<ShardSpec> {
    let total = grid + 1;
    assert!(
        shards >= 1 && shards <= total,
        "shards must be in 1..={total}"
    ); // xtask:allow(no-panic): documented precondition
    let base = total / shards;
    let extra = total % shards;
    let mut start = 0;
    (0..shards)
        .map(|index| {
            let points = base + usize::from(index < extra);
            let spec = ShardSpec {
                index,
                start,
                points,
            };
            start += points;
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_grid_exactly() {
        for grid in [2usize, 5, 16, 63, 100] {
            for shards in 1..=(grid + 1).min(9) {
                let plan = split_grid(grid, shards);
                assert_eq!(plan.len(), shards);
                let mut next = 0;
                for (i, spec) in plan.iter().enumerate() {
                    assert_eq!(spec.index, i);
                    assert_eq!(spec.start, next, "grid {grid} shards {shards}");
                    assert!(spec.points >= 1);
                    next += spec.points;
                }
                assert_eq!(next, grid + 1, "grid {grid} shards {shards}");
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for (grid, shards) in [(16usize, 3usize), (10, 4), (100, 7)] {
            let plan = split_grid(grid, shards);
            let min = plan.iter().map(|s| s.points).min().unwrap();
            let max = plan.iter().map(|s| s.points).max().unwrap();
            assert!(max - min <= 1, "grid {grid} shards {shards}");
        }
    }

    #[test]
    fn one_shard_takes_everything() {
        let plan = split_grid(8, 1);
        assert_eq!(
            plan,
            vec![ShardSpec {
                index: 0,
                start: 0,
                points: 9
            }]
        );
    }

    #[test]
    #[should_panic(expected = "shards must be in")]
    fn zero_shards_panic() {
        let _ = split_grid(4, 0);
    }
}
