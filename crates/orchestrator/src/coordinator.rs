//! The supervision loop: spawn, watch, kill, re-issue, merge.

use crate::chaos::ProcChaosPlan;
use crate::error::OrchestratorError;
use crate::plan::{split_grid, ShardSpec};
use obs::{MetricsSink, NoopSink};
use simulator::{keys, SweepCheckpoint};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to launch one worker process.
///
/// The program must honor the `nocomm-shard run` command line (the
/// `nocomm-shard` binary itself is the normal choice); `args` are
/// prepended before `run`, so a wrapper script or `cargo run --bin
/// nocomm-shard --` both work.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Path to the worker executable.
    pub program: PathBuf,
    /// Arguments inserted before the `run` subcommand.
    pub args: Vec<String>,
}

impl WorkerSpec {
    /// A worker launched as `program run ...` with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerSpec {
        WorkerSpec {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// Uses the currently running executable as the worker — the
    /// right choice when the coordinator *is* `nocomm-shard`.
    ///
    /// # Errors
    ///
    /// Returns [`OrchestratorError::Io`] when the OS cannot report
    /// the current executable's path.
    pub fn current_exe() -> Result<WorkerSpec, OrchestratorError> {
        Ok(WorkerSpec::new(std::env::current_exe()?))
    }
}

/// Tuning for [`run_sweep`]: shard count, scratch directory, worker
/// launch spec, and the supervision knobs (deadline, stall detection,
/// respawn budget, backoff).
#[derive(Clone, Debug)]
pub struct OrchestratorConfig {
    /// Number of shards to split the grid into (`1..=grid + 1`).
    pub shards: usize,
    /// Directory holding the per-shard checkpoint files
    /// (`shard-<index>.json`). Created if absent; stale files from a
    /// crashed coordinator are adopted when valid and scrubbed when
    /// not, so a restarted coordinator resumes instead of redoing.
    pub dir: PathBuf,
    /// How to launch worker processes.
    pub worker: WorkerSpec,
    /// Wall-clock budget for one worker attempt; overrunning workers
    /// are killed and their shard re-issued.
    pub shard_deadline: Duration,
    /// A worker whose checkpoint file stops growing for this long is
    /// considered hung, killed, and its shard re-issued.
    pub stall_timeout: Duration,
    /// How many times a shard may be *re*-issued after its first
    /// attempt before the sweep gives up with
    /// [`OrchestratorError::ShardExhausted`].
    pub respawn_budget: u32,
    /// First re-issue delay; doubles per subsequent attempt.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// How often the supervisor polls its workers.
    pub poll_interval: Duration,
    /// Deterministic fault schedule forwarded to workers via
    /// `--fault`; `None` (the default) runs everything fault-free.
    pub chaos: Option<ProcChaosPlan>,
}

impl OrchestratorConfig {
    /// A config with conservative defaults: 30s shard deadline, 2s
    /// stall timeout, 4 respawns, 50ms..1s backoff, 20ms polling.
    pub fn new(shards: usize, dir: impl Into<PathBuf>, worker: WorkerSpec) -> OrchestratorConfig {
        OrchestratorConfig {
            shards,
            dir: dir.into(),
            worker,
            shard_deadline: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(2),
            respawn_budget: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            poll_interval: Duration::from_millis(20),
            chaos: None,
        }
    }

    fn shard_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("shard-{index}.json"))
    }
}

/// One live worker process and the progress we last saw from it.
struct Running {
    child: Child,
    spawned_at: Instant,
    last_len: u64,
    last_progress: Instant,
}

enum Slot {
    Pending { eligible_at: Instant },
    Running(Running),
    Done,
}

/// Everything the supervisor tracks about one shard.
struct ShardTask {
    spec: ShardSpec,
    expected: SweepCheckpoint,
    path: PathBuf,
    slot: Slot,
    attempts: u32,
    first_issued: Option<Instant>,
}

/// Runs `request` — a whole-grid sweep description with no results
/// yet — as `config.shards` worker processes and merges their shard
/// checkpoints into the byte-identical whole-grid checkpoint a single
/// uninterrupted process would have written. See the crate docs for
/// the supervision contract.
///
/// # Errors
///
/// [`OrchestratorError::InvalidConfig`] for unrunnable requests,
/// [`OrchestratorError::Spawn`] when a worker cannot be launched at
/// all, [`OrchestratorError::ShardExhausted`] when a shard burns its
/// respawn budget, and [`OrchestratorError::Sweep`]/[`Io`] for
/// checkpoint and filesystem failures.
///
/// [`Io`]: OrchestratorError::Io
pub fn run_sweep(
    request: &SweepCheckpoint,
    config: &OrchestratorConfig,
) -> Result<SweepCheckpoint, OrchestratorError> {
    run_sweep_with_metrics(request, config, Arc::new(NoopSink))
}

/// [`run_sweep`] with the supervision ledger (`shard.*` counters and
/// the `shard.span_ns` histogram) flowing into `sink`.
///
/// # Errors
///
/// As for [`run_sweep`].
pub fn run_sweep_with_metrics(
    request: &SweepCheckpoint,
    config: &OrchestratorConfig,
    sink: Arc<dyn MetricsSink>,
) -> Result<SweepCheckpoint, OrchestratorError> {
    validate(request, config)?;
    std::fs::create_dir_all(&config.dir)?;
    let mut tasks: Vec<ShardTask> = split_grid(request.grid, config.shards)
        .into_iter()
        .map(|spec| ShardTask {
            expected: SweepCheckpoint::shard(
                request.n,
                request.delta,
                request.grid,
                request.trials,
                request.seed,
                spec.start,
                spec.points,
            ),
            path: config.shard_path(spec.index),
            slot: Slot::Pending {
                eligible_at: Instant::now(),
            },
            attempts: 0,
            first_issued: None,
            spec,
        })
        .collect();
    for task in &mut tasks {
        adopt_existing(task, sink.as_ref());
    }
    if let Err(err) = supervise(&mut tasks, config, sink.as_ref()) {
        kill_all(&mut tasks, sink.as_ref());
        return Err(err);
    }
    let mut docs = Vec::with_capacity(tasks.len());
    for task in &tasks {
        docs.push(SweepCheckpoint::load(&task.path)?);
    }
    Ok(SweepCheckpoint::merge_shards(request, &docs)?)
}

fn invalid(message: impl Into<String>) -> OrchestratorError {
    OrchestratorError::InvalidConfig {
        message: message.into(),
    }
}

fn validate(
    request: &SweepCheckpoint,
    config: &OrchestratorConfig,
) -> Result<(), OrchestratorError> {
    if request.n < 2 || request.grid < 2 || request.trials == 0 || !request.delta.is_finite() {
        return Err(invalid("request parameters are out of range"));
    }
    if request.rng_stream_version != simulator::RNG_STREAM_VERSION {
        return Err(invalid(format!(
            "request is for rng stream v{}, this build produces v{}",
            request.rng_stream_version,
            simulator::RNG_STREAM_VERSION
        )));
    }
    if !request.covers_whole_grid() {
        return Err(invalid("the request must cover the whole grid"));
    }
    if !request.wins.is_empty() {
        return Err(invalid("the request must not already carry results"));
    }
    if config.shards == 0 {
        return Err(invalid("at least one shard is required"));
    }
    if config.shards > request.grid + 1 {
        return Err(invalid(format!(
            "{} shards cannot each cover a point of a {}-point grid",
            config.shards,
            request.grid + 1
        )));
    }
    if config.worker.program.as_os_str().is_empty() {
        return Err(invalid("the worker program must be set"));
    }
    Ok(())
}

/// Adopts a pre-existing shard file left by an earlier (possibly
/// crashed) coordinator: a complete valid file is accepted outright, a
/// valid prefix is left for the worker to resume, anything else is
/// scrubbed so the replacement worker starts clean.
fn adopt_existing(task: &mut ShardTask, sink: &dyn MetricsSink) {
    match SweepCheckpoint::load(&task.path) {
        Ok(found) if found.validate_matches(&task.expected).is_ok() => {
            if found.is_complete() {
                task.slot = Slot::Done;
                sink.add(keys::SHARD_COMPLETED, 1);
            }
        }
        Err(simulator::SweepError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {}
        _ => {
            sink.add(keys::SHARD_CORRUPT, 1);
            let _removed = std::fs::remove_file(&task.path);
        }
    }
}

fn supervise(
    tasks: &mut [ShardTask],
    config: &OrchestratorConfig,
    sink: &dyn MetricsSink,
) -> Result<(), OrchestratorError> {
    loop {
        let mut all_done = true;
        for task in tasks.iter_mut() {
            match &task.slot {
                Slot::Done => {}
                Slot::Pending { eligible_at } => {
                    all_done = false;
                    let due = Instant::now() >= *eligible_at;
                    if due {
                        spawn_worker(task, config, sink)?;
                    }
                }
                Slot::Running(_) => {
                    all_done = false;
                    poll_worker(task, config, sink)?;
                }
            }
        }
        if all_done {
            return Ok(());
        }
        std::thread::sleep(config.poll_interval);
    }
}

fn spawn_worker(
    task: &mut ShardTask,
    config: &OrchestratorConfig,
    sink: &dyn MetricsSink,
) -> Result<(), OrchestratorError> {
    let attempt = task.attempts;
    let mut cmd = Command::new(&config.worker.program);
    cmd.args(&config.worker.args)
        .arg("run")
        .arg("--n")
        .arg(task.expected.n.to_string())
        .arg("--delta")
        .arg(format!("{:?}", task.expected.delta))
        .arg("--grid")
        .arg(task.expected.grid.to_string())
        .arg("--trials")
        .arg(task.expected.trials.to_string())
        .arg("--seed")
        .arg(task.expected.seed.to_string())
        .arg("--start")
        .arg(task.spec.start.to_string())
        .arg("--points")
        .arg(task.spec.points.to_string())
        .arg("--out")
        .arg(&task.path)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(plan) = &config.chaos {
        if let Some(fault) = plan.fault_for(task.spec.index, attempt) {
            cmd.arg("--fault").arg(fault.to_arg());
        }
    }
    let child = cmd.spawn().map_err(|source| OrchestratorError::Spawn {
        shard: task.spec.index,
        source,
    })?;
    task.attempts += 1;
    let now = Instant::now();
    if task.first_issued.is_none() {
        task.first_issued = Some(now);
    }
    sink.add(keys::SHARD_ISSUED, 1);
    task.slot = Slot::Running(Running {
        child,
        spawned_at: now,
        last_len: file_len(&task.path),
        last_progress: now,
    });
    Ok(())
}

fn poll_worker(
    task: &mut ShardTask,
    config: &OrchestratorConfig,
    sink: &dyn MetricsSink,
) -> Result<(), OrchestratorError> {
    let Slot::Running(run) = &mut task.slot else {
        return Ok(());
    };
    match run.child.try_wait() {
        Ok(Some(status)) if status.success() => accept_or_requeue(task, config, sink),
        Ok(Some(_)) => {
            // Dirty exit: whatever the atomic write-rename left behind
            // is a valid prefix the next attempt resumes (requeue
            // scrubs it if it is not).
            requeue(task, config, sink)
        }
        Ok(None) => {
            let now = Instant::now();
            let len = file_len(&task.path);
            if len != run.last_len {
                run.last_len = len;
                run.last_progress = now;
            }
            let stalled = now.duration_since(run.last_progress) > config.stall_timeout;
            let overdue = now.duration_since(run.spawned_at) > config.shard_deadline;
            if stalled || overdue {
                if run.child.kill().is_ok() {
                    sink.add(keys::SHARD_KILLED, 1);
                }
                let _reaped = run.child.wait();
                requeue(task, config, sink)
            } else {
                Ok(())
            }
        }
        Err(_) => {
            if run.child.kill().is_ok() {
                sink.add(keys::SHARD_KILLED, 1);
            }
            let _reaped = run.child.wait();
            requeue(task, config, sink)
        }
    }
}

/// A worker exited cleanly: its file must now be the complete,
/// parameter-exact shard checkpoint. Anything else counts as corrupt
/// output — scrub and re-issue under the budget.
fn accept_or_requeue(
    task: &mut ShardTask,
    config: &OrchestratorConfig,
    sink: &dyn MetricsSink,
) -> Result<(), OrchestratorError> {
    let accepted = SweepCheckpoint::load(&task.path)
        .is_ok_and(|found| found.validate_matches(&task.expected).is_ok() && found.is_complete());
    if accepted {
        task.slot = Slot::Done;
        sink.add(keys::SHARD_COMPLETED, 1);
        if let Some(first) = task.first_issued {
            let span = u64::try_from(first.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record(keys::SHARD_SPAN_NS, span);
        }
        Ok(())
    } else {
        sink.add(keys::SHARD_CORRUPT, 1);
        let _removed = std::fs::remove_file(&task.path);
        requeue(task, config, sink)
    }
}

fn requeue(
    task: &mut ShardTask,
    config: &OrchestratorConfig,
    sink: &dyn MetricsSink,
) -> Result<(), OrchestratorError> {
    scrub_invalid(task, sink);
    if task.attempts > config.respawn_budget {
        return Err(OrchestratorError::ShardExhausted {
            shard: task.spec.index,
            attempts: task.attempts,
        });
    }
    sink.add(keys::SHARD_REISSUED, 1);
    let shift = task.attempts.saturating_sub(1).min(16);
    let backoff = config
        .backoff_base
        .saturating_mul(1_u32 << shift)
        .min(config.backoff_cap);
    task.slot = Slot::Pending {
        eligible_at: Instant::now() + backoff,
    };
    Ok(())
}

/// Removes a shard file that no replacement worker could resume
/// (unparseable, or for different sweep parameters); a valid prefix
/// is kept so the next attempt picks up where the victim died.
fn scrub_invalid(task: &ShardTask, sink: &dyn MetricsSink) {
    if !task.path.exists() {
        return;
    }
    let resumable = SweepCheckpoint::load(&task.path)
        .is_ok_and(|found| found.validate_matches(&task.expected).is_ok());
    if !resumable {
        sink.add(keys::SHARD_CORRUPT, 1);
        let _removed = std::fs::remove_file(&task.path);
    }
}

/// Tears down every still-running worker after a fatal error so the
/// coordinator never leaks processes.
fn kill_all(tasks: &mut [ShardTask], sink: &dyn MetricsSink) {
    for task in tasks.iter_mut() {
        if let Slot::Running(run) = &mut task.slot {
            if run.child.kill().is_ok() {
                sink.add(keys::SHARD_KILLED, 1);
            }
            let _reaped = run.child.wait();
        }
    }
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map_or(0, |meta| meta.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> SweepCheckpoint {
        SweepCheckpoint::new(2, 1.0, 4, 1_000, 7)
    }

    fn config(shards: usize) -> OrchestratorConfig {
        OrchestratorConfig::new(
            shards,
            std::env::temp_dir().join("nocomm-orch-validate"),
            WorkerSpec::new("/nonexistent/worker"),
        )
    }

    #[test]
    fn unrunnable_configs_are_rejected_before_any_spawn() {
        let cases: Vec<(SweepCheckpoint, OrchestratorConfig, &str)> = vec![
            (request(), config(0), "at least one shard"),
            (request(), config(6), "cannot each cover"),
            (
                SweepCheckpoint::shard(2, 1.0, 4, 1_000, 7, 1, 2),
                config(2),
                "whole grid",
            ),
            (
                SweepCheckpoint::new(2, 1.0, 1, 1_000, 7),
                config(1),
                "out of range",
            ),
            (
                SweepCheckpoint::new(2, f64::NAN, 4, 1_000, 7),
                config(1),
                "out of range",
            ),
        ];
        for (req, cfg, needle) in cases {
            let err = run_sweep(&req, &cfg).unwrap_err();
            let OrchestratorError::InvalidConfig { message } = err else {
                panic!("expected InvalidConfig, got {err}");
            };
            assert!(message.contains(needle), "{message:?} missing {needle:?}");
        }
    }

    #[test]
    fn foreign_stream_versions_never_reach_a_worker() {
        let mut req = request();
        req.rng_stream_version += 1;
        let err = run_sweep(&req, &config(1)).unwrap_err();
        assert!(
            matches!(err, OrchestratorError::InvalidConfig { .. }),
            "{err}"
        );
    }

    #[test]
    fn requests_carrying_results_are_rejected() {
        let mut req = request();
        req.wins.push(3);
        let err = run_sweep(&req, &config(1)).unwrap_err();
        assert!(
            matches!(err, OrchestratorError::InvalidConfig { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_worker_binaries_surface_as_spawn_errors() {
        let dir = std::env::temp_dir().join("nocomm-orch-spawnfail");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = OrchestratorConfig::new(2, &dir, WorkerSpec::new("/nonexistent/worker"));
        let err = run_sweep(&request(), &cfg).unwrap_err();
        assert!(
            matches!(err, OrchestratorError::Spawn { shard: 0, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = config(1);
        let base = cfg.backoff_base;
        for (attempts, want) in [
            (1_u32, base),
            (2, base * 2),
            (3, base * 4),
            (40, cfg.backoff_cap),
        ] {
            let shift = attempts.saturating_sub(1).min(16);
            let backoff = base.saturating_mul(1_u32 << shift).min(cfg.backoff_cap);
            assert_eq!(backoff, want.min(cfg.backoff_cap), "attempts {attempts}");
        }
    }
}
