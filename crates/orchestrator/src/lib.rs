//! Sharded sweep orchestration: many worker *processes*, one
//! bit-identical curve.
//!
//! The paper's sweeps are embarrassingly parallel across grid points,
//! and the engine's per-point seeding makes the parallelism free of
//! coordination: grid point `k`'s RNG stream is a pure function of
//! `(seed, k)`, so any process can compute any point with zero shared
//! state — the engine-level analogue of the paper's no-communication
//! optimum. This crate exploits that to lift the single-process
//! checkpoint machinery (`sweep-checkpoint/v1`) to a fleet:
//!
//! 1. [`split_grid`] cuts the `grid + 1` points into contiguous
//!    [`ShardSpec`] slices.
//! 2. [`run_sweep`] spawns one worker process per shard (any binary
//!    honoring the `nocomm-shard run` CLI, normally `nocomm-shard`
//!    itself) and supervises them: per-shard deadlines, stall
//!    detection by watching checkpoint growth, `SIGKILL` for hung
//!    workers, and re-issue with a capped exponential backoff under a
//!    respawn budget when a worker dies, stalls, or hands back a
//!    corrupt file.
//! 3. The completed shard checkpoints are merged
//!    ([`simulator::SweepCheckpoint::merge_shards`]) into a document
//!    *byte-identical* to what one uninterrupted process would have
//!    written — the same bit-identity discipline the thread-level
//!    chaos layer enforces, lifted to process crashes. Workers may be
//!    `kill -9`ed at any instant: the atomic write-rename after every
//!    point guarantees whatever survives is a well-formed prefix the
//!    replacement worker resumes.
//!
//! Fault injection for tests and CI is deterministic and replayable:
//! a [`ProcChaosPlan`] maps `(shard, attempt)` to the [`ProcFault`]
//! that attempt's worker must inject into itself (abort mid-shard,
//! stall forever, or corrupt its output), so every chaotic run can be
//! reproduced from its seed.
//!
//! The supervision ledger flows into any
//! [`obs::MetricsSink`] under the `shard.*` keys
//! (`issued`/`completed`/`reissued`/`killed`/`corrupt` counters and a
//! `span_ns` histogram; see [`simulator::keys`]).

#![forbid(unsafe_code)]

mod chaos;
mod coordinator;
mod error;
mod plan;

pub use chaos::{ProcChaosPlan, ProcFault};
pub use coordinator::{run_sweep, run_sweep_with_metrics, OrchestratorConfig, WorkerSpec};
pub use error::OrchestratorError;
pub use plan::{split_grid, ShardSpec};
