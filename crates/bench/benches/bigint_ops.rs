//! Substrate cost: big-integer primitives that dominate the exact
//! pipelines (multiplication, division, gcd via rational reduction,
//! factorials, decimal I/O).

use bigint::BigInt;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rational::{binomial, factorial, Rational};

fn big(bits: usize) -> BigInt {
    // Deterministic pseudo-random value with the requested bit length.
    let mut x = BigInt::one();
    let mut seed = 0x9e37_79b9u64;
    while (x.bits() as usize) < bits {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        x = x * BigInt::from(u32::MAX) + BigInt::from(seed as u32);
    }
    x
}

fn bench_bigint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for bits in [256usize, 2048, 16384] {
        let a = big(bits);
        let b = big(bits / 2 + 17);
        group.bench_with_input(BenchmarkId::new("mul", bits), &bits, |bench, _| {
            bench.iter(|| &a * &b);
        });
        group.bench_with_input(BenchmarkId::new("div_rem", bits), &bits, |bench, _| {
            bench.iter(|| a.div_rem(&b));
        });
        group.bench_with_input(BenchmarkId::new("gcd", bits), &bits, |bench, _| {
            bench.iter(|| a.gcd(&b));
        });
        group.bench_with_input(BenchmarkId::new("to_string", bits), &bits, |bench, _| {
            bench.iter(|| a.to_string());
        });
    }
    group.finish();
}

fn bench_combinatorics(c: &mut Criterion) {
    let mut group = c.benchmark_group("combinatorics");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [20u32, 100, 400] {
        group.bench_with_input(BenchmarkId::new("factorial", n), &n, |b, &n| {
            b.iter(|| factorial(n));
        });
        group.bench_with_input(BenchmarkId::new("binomial_half", n), &n, |b, &n| {
            b.iter(|| binomial(n, n / 2));
        });
    }
    // Rational reduction pressure: summing many unlike fractions.
    group.bench_function("rational_harmonic_200", |b| {
        b.iter(|| {
            (1i64..=200)
                .map(|k| Rational::ratio(1, k))
                .sum::<Rational>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bigint, bench_combinatorics);
criterion_main!(benches);
