//! Dispatch-layer payoff of the Monte-Carlo engine: the same
//! estimation workload through the fully-dynamic v1 loop
//! ([`Simulation::run_dyn`]: one virtual call per decision, one
//! scalar RNG call per uniform), through the generic fallback with
//! buffered sampling (virtual decisions, chunked uniforms), and
//! through the monomorphized kernel fast path
//! ([`Simulation::run`]: decision inlined, chunked uniforms).
//!
//! All three paths are bit-identical by construction — asserted here
//! before any timing — so every speedup below is pure dispatch and
//! sampling overhead, not a change in the estimator.
//!
//! Besides the report lines (trials/sec per path), this bench writes
//! `results/BENCH_simulator_throughput.json`: one paired row per
//! `(family, n, path)` with the dyn baseline as `cold_ns` and the
//! optimized path as `memoized_ns`, so `speedup` reads as "times
//! faster than dyn dispatch".
//!
//! Run `--smoke` for a single short iteration (CI: exercises the
//! bench code and the JSON emission without the full measurement).

use bench::{write_bench_json, PairedTiming};
use criterion::black_box;
use decision::{Bin, LocalRule, ObliviousAlgorithm, SingleThresholdAlgorithm};
use rational::Rational;
use simulator::{EngineMetrics, Simulation, SimulationReport};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const DELTA: f64 = 1.0;
const SIZES: [usize; 3] = [3, 5, 8];

/// Hides a rule's kernel hint, forcing the engine onto the generic
/// per-decision path while keeping buffered sampling.
struct Opaque<'a>(&'a dyn LocalRule);

impl LocalRule for Opaque<'_> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn decide(&self, player: usize, input: f64, coin: f64) -> Bin {
        self.0.decide(player, input, coin)
    }
}

/// Median wall-clock nanoseconds of `routine` over `samples` runs.
fn median_ns(samples: usize, mut routine: impl FnMut() -> SimulationReport) -> f64 {
    let times = (0..samples).map(|_| time_once(&mut routine)).collect();
    median(times)
}

/// One timed invocation.
fn time_once(routine: &mut impl FnMut() -> SimulationReport) -> f64 {
    let start = Instant::now();
    black_box(routine());
    start.elapsed().as_nanos() as f64
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Paired measurement for overhead comparisons: times `a` and `b`
/// back-to-back within each sample (order alternating), so slow clock
/// drift and frequency scaling hit both sides equally instead of
/// masquerading as overhead. Returns the median `a` time, the median
/// `b` time, and the min-time ratio `min(b) / min(a)` — the
/// least-noise overhead estimate for CPU-bound work, since the
/// fastest sample of each side is the one least disturbed by
/// scheduling and cache interference.
fn paired_median_ns(
    samples: usize,
    mut a: impl FnMut() -> SimulationReport,
    mut b: impl FnMut() -> SimulationReport,
) -> (f64, f64, f64) {
    let mut a_times = Vec::with_capacity(samples);
    let mut b_times = Vec::with_capacity(samples);
    for i in 0..samples {
        let (ta, tb) = if i % 2 == 0 {
            let ta = time_once(&mut a);
            let tb = time_once(&mut b);
            (ta, tb)
        } else {
            let tb = time_once(&mut b);
            let ta = time_once(&mut a);
            (ta, tb)
        };
        a_times.push(ta);
        b_times.push(tb);
    }
    let min = |times: &[f64]| times.iter().copied().fold(f64::INFINITY, f64::min);
    let ratio = min(&b_times) / min(&a_times);
    (median(a_times), median(b_times), ratio)
}

fn trials_per_sec(trials: u64, ns: f64) -> f64 {
    trials as f64 / ns * 1e9
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (trials, samples) = if smoke { (20_000, 1) } else { (400_000, 15) };
    // Single-threaded engine: the comparison isolates dispatch and
    // sampling cost per core, independent of pool scheduling.
    let sim = Simulation::new(trials, 42).with_threads(1);

    println!(
        "simulator_throughput: {trials} trials/run, δ = {DELTA}, single-threaded{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut timings = Vec::new();
    let mut metrics_ratios: Vec<(usize, f64)> = Vec::new();
    for n in SIZES {
        let threshold = SingleThresholdAlgorithm::symmetric(n, Rational::ratio(622, 1000))
            .expect("valid symmetric thresholds");
        let oblivious = ObliviousAlgorithm::fair(n);

        // Transparency first: every path must report the same result.
        let reference = sim.run(&threshold, DELTA);
        assert_eq!(sim.run(&Opaque(&threshold), DELTA), reference);
        assert_eq!(sim.run_dyn(&threshold, DELTA), reference);
        assert_eq!(
            sim.run(&Opaque(&oblivious), DELTA),
            sim.run(&oblivious, DELTA)
        );
        assert_eq!(sim.run_dyn(&oblivious, DELTA), sim.run(&oblivious, DELTA));

        let dyn_ns = median_ns(samples, || sim.run_dyn(&threshold, DELTA));
        let buffered_ns = median_ns(samples, || sim.run(&Opaque(&threshold), DELTA));
        // The instrumented kernel path: same engine, a live
        // EngineMetrics sink attached. Flushes are per batch, so this
        // must stay within noise of the uninstrumented path — measured
        // paired so the ratio is drift-free.
        let metered_sim = sim.clone().with_metrics(Arc::new(EngineMetrics::new()));
        assert_eq!(metered_sim.run(&threshold, DELTA), reference);
        let (kernel_ns, metered_ns, metrics_ratio) = paired_median_ns(
            samples,
            || sim.run(&threshold, DELTA),
            || metered_sim.run(&threshold, DELTA),
        );
        metrics_ratios.push((n, metrics_ratio));
        for (path, ns) in [("buffered", buffered_ns), ("kernel+buffered", kernel_ns)] {
            timings.push(PairedTiming {
                label: format!("threshold n = {n} · {path}"),
                cold_ns: dyn_ns,
                memoized_ns: ns,
            });
        }
        // Paired against the uninstrumented kernel path, so
        // `speedup` reads directly as the metrics overhead factor
        // (1.0 = free).
        timings.push(PairedTiming {
            label: format!("threshold n = {n} · kernel+metrics"),
            cold_ns: kernel_ns,
            memoized_ns: metered_ns,
        });
        println!(
            "threshold n = {n}: dyn {:>12.0}/s   buffered {:>12.0}/s ({:.2}x)   kernel {:>12.0}/s ({:.2}x)   metered {:>12.0}/s ({:.3}x of kernel)",
            trials_per_sec(trials, dyn_ns),
            trials_per_sec(trials, buffered_ns),
            dyn_ns / buffered_ns,
            trials_per_sec(trials, kernel_ns),
            dyn_ns / kernel_ns,
            trials_per_sec(trials, metered_ns),
            1.0 / metrics_ratio,
        );

        let dyn_ns = median_ns(samples, || sim.run_dyn(&oblivious, DELTA));
        let kernel_ns = median_ns(samples, || sim.run(&oblivious, DELTA));
        timings.push(PairedTiming {
            label: format!("oblivious n = {n} · kernel+buffered"),
            cold_ns: dyn_ns,
            memoized_ns: kernel_ns,
        });
        println!(
            "oblivious n = {n}: dyn {:>12.0}/s   kernel {:>12.0}/s ({:.2}x)",
            trials_per_sec(trials, dyn_ns),
            trials_per_sec(trials, kernel_ns),
            dyn_ns / kernel_ns,
        );
    }

    // Smoke runs still exercise the JSON emission, but against a
    // scratch path so they never clobber the committed measurement.
    let path = if smoke {
        std::env::temp_dir().join("BENCH_simulator_throughput.smoke.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_simulator_throughput.json")
    };
    write_bench_json(&path, "simulator_throughput", &timings).expect("write bench JSON");
    println!("written: {}", path.display());

    if !smoke {
        let at_n8 = timings
            .iter()
            .find(|t| t.label == "threshold n = 8 · kernel+buffered")
            .expect("n = 8 kernel row measured")
            .speedup();
        assert!(
            at_n8 >= 2.0,
            "monomorphized+buffered must be at least 2x over dyn dispatch at n = 8, got {at_n8:.2}x"
        );
        // Observability must be free: the metrics-enabled kernel path
        // stays within 2% of the uninstrumented one at every size,
        // judged on the drift-free paired ratio.
        for (n, ratio) in &metrics_ratios {
            assert!(
                *ratio <= 1.02,
                "threshold n = {n}: metrics overhead {:.1}% exceeds the 2% budget",
                (ratio - 1.0) * 100.0
            );
        }
    }
}
