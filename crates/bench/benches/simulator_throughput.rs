//! Dispatch-layer payoff of the Monte-Carlo engine: the same
//! estimation workload through the fully-dynamic v1 loop
//! ([`Simulation::run_dyn`]: one virtual call per decision, one
//! scalar RNG call per uniform), through the generic fallback with
//! buffered sampling (virtual decisions, chunked uniforms), through
//! the monomorphized sequential kernel (decision inlined, chunked
//! uniforms, the exact v2 stream via [`KernelStream::Sequential`]),
//! and through the lane-batched v3 kernel ([`Simulation::run`]'s
//! default: branch-free `[f64; LANES]` trial groups on the
//! counter-addressed Threefry stream).
//!
//! The sequential paths are bit-identical by construction — asserted
//! here before any timing — so their speedups are pure dispatch and
//! sampling overhead. The lane path is a different (v3) stream with
//! the same estimator: lane widths are asserted bit-identical to each
//! other and the estimate is asserted statistically consistent with
//! the sequential one.
//!
//! Every row is measured **paired**: baseline and optimized run
//! back-to-back with alternating order inside each sample, and the
//! recorded `cold_ns`/`memoized_ns` are the per-side minima, so
//! `speedup` is the paired min-time ratio (the least-noise estimate
//! for CPU-bound work — the PR 4 overhead-gate methodology, now used
//! for all rows; medians drifted enough on shared hardware that a
//! previously recorded 0.918x on one `buffered` row was
//! indistinguishable from noise). Under paired minima the `buffered`
//! rows settle at a real, uniform ≈0.93x: buffering alone buys
//! nothing when every decision is still a virtual call — it pays
//! only combined with monomorphized kernels, which is exactly what
//! the `kernel+buffered` rows isolate.
//!
//! Modes: `--smoke` (single short iteration, scratch output path;
//! CI's bench-smoke step), `--quick` (short paired measurement to a
//! scratch path for `cargo xtask bench-check`; CI's bench-check
//! step). The full run rewrites
//! `results/BENCH_simulator_throughput.json`.

use bench::{write_bench_json, PairedTiming};
use criterion::black_box;
use decision::{Bin, LocalRule, ObliviousAlgorithm, SingleThresholdAlgorithm};
use rational::Rational;
use simulator::{EngineMetrics, KernelStream, LaneWidth, Simulation, SimulationReport};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const DELTA: f64 = 1.0;
const SIZES: [usize; 3] = [3, 5, 8];

/// Hides a rule's kernel hint, forcing the engine onto the generic
/// per-decision path while keeping buffered sampling.
struct Opaque<'a>(&'a dyn LocalRule);

impl LocalRule for Opaque<'_> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn decide(&self, player: usize, input: f64, coin: f64) -> Bin {
        self.0.decide(player, input, coin)
    }
}

/// One timed invocation.
fn time_once(routine: &mut impl FnMut() -> SimulationReport) -> f64 {
    let start = Instant::now();
    black_box(routine());
    start.elapsed().as_nanos() as f64
}

/// Paired measurement: times `base` and `opt` back-to-back within
/// each sample (order alternating), so slow clock drift and frequency
/// scaling hit both sides equally instead of masquerading as speedup.
/// Returns the per-side **minimum** times; their ratio is the paired
/// min-time speedup, the least-noise estimate for CPU-bound work
/// since each side's fastest sample is the one least disturbed by
/// scheduling and cache interference.
fn paired_min_ns(
    samples: usize,
    mut base: impl FnMut() -> SimulationReport,
    mut opt: impl FnMut() -> SimulationReport,
) -> (f64, f64) {
    let mut base_min = f64::INFINITY;
    let mut opt_min = f64::INFINITY;
    for i in 0..samples {
        let (tb, to) = if i % 2 == 0 {
            let tb = time_once(&mut base);
            let to = time_once(&mut opt);
            (tb, to)
        } else {
            let to = time_once(&mut opt);
            let tb = time_once(&mut base);
            (tb, to)
        };
        base_min = base_min.min(tb);
        opt_min = opt_min.min(to);
    }
    (base_min, opt_min)
}

fn trials_per_sec(trials: u64, ns: f64) -> f64 {
    trials as f64 / ns * 1e9
}

/// The committed measurement lives next to the workspace results; the
/// smoke/quick modes write to scratch paths so they never clobber it.
fn output_path(smoke: bool, quick: bool) -> PathBuf {
    if smoke {
        std::env::temp_dir().join("BENCH_simulator_throughput.smoke.json")
    } else if quick {
        std::env::temp_dir().join("BENCH_simulator_throughput.quick.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_simulator_throughput.json")
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = !smoke && std::env::args().any(|a| a == "--quick");
    let (trials, samples) = if smoke {
        (20_000, 1)
    } else if quick {
        (60_000, 7)
    } else {
        (400_000, 15)
    };
    // Single-threaded engine: the comparison isolates dispatch and
    // sampling cost per core, independent of pool scheduling.
    let sim = Simulation::new(trials, 42).with_threads(1);
    let sequential = sim.clone().with_kernel_stream(KernelStream::Sequential);

    println!(
        "simulator_throughput: {trials} trials/run, δ = {DELTA}, single-threaded{}",
        if smoke {
            " (smoke)"
        } else if quick {
            " (quick)"
        } else {
            ""
        }
    );

    let mut timings = Vec::new();
    let mut metrics_ratios: Vec<(usize, f64)> = Vec::new();
    for n in SIZES {
        let threshold = SingleThresholdAlgorithm::symmetric(n, Rational::ratio(622, 1000))
            .expect("valid symmetric thresholds");
        let oblivious = ObliviousAlgorithm::fair(n);

        // Transparency first. The sequential paths share one logical
        // stream and must agree exactly...
        let seq_ref = sequential.run(&threshold, DELTA);
        assert_eq!(sequential.run(&Opaque(&threshold), DELTA), seq_ref);
        assert_eq!(sim.run_dyn(&threshold, DELTA), seq_ref);
        assert_eq!(
            sequential.run(&Opaque(&oblivious), DELTA),
            sequential.run(&oblivious, DELTA)
        );
        assert_eq!(
            sim.run_dyn(&oblivious, DELTA),
            sequential.run(&oblivious, DELTA)
        );
        // ...while the lane path is width-invariant on its own (v3)
        // stream and statistically consistent with the sequential
        // estimate.
        let lane_ref = sim.run(&threshold, DELTA);
        for width in [LaneWidth::W1, LaneWidth::W8] {
            let widened = sim.clone().with_lane_width(width);
            assert_eq!(widened.run(&threshold, DELTA), lane_ref);
        }
        assert!(
            lane_ref.agrees_with(seq_ref.estimate, 5.0),
            "lane vs sequential estimate at n = {n}: {lane_ref} vs {seq_ref}"
        );

        let (dyn_ns, buffered_ns) = paired_min_ns(
            samples,
            || sim.run_dyn(&threshold, DELTA),
            || sequential.run(&Opaque(&threshold), DELTA),
        );
        timings.push(PairedTiming {
            label: format!("threshold n = {n} · buffered"),
            cold_ns: dyn_ns,
            memoized_ns: buffered_ns,
        });
        let (dyn_ns, kernel_ns) = paired_min_ns(
            samples,
            || sim.run_dyn(&threshold, DELTA),
            || sequential.run(&threshold, DELTA),
        );
        timings.push(PairedTiming {
            label: format!("threshold n = {n} · kernel+buffered"),
            cold_ns: dyn_ns,
            memoized_ns: kernel_ns,
        });
        let (dyn_ns, lane_ns) = paired_min_ns(
            samples,
            || sim.run_dyn(&threshold, DELTA),
            || sim.run(&threshold, DELTA),
        );
        timings.push(PairedTiming {
            label: format!("threshold n = {n} · lane"),
            cold_ns: dyn_ns,
            memoized_ns: lane_ns,
        });
        // The instrumented lane path: same engine, a live
        // EngineMetrics sink attached. Flushes are per batch, so this
        // must stay within noise of the uninstrumented path.
        let metered_sim = sim.clone().with_metrics(Arc::new(EngineMetrics::new()));
        assert_eq!(metered_sim.run(&threshold, DELTA), lane_ref);
        let (plain_ns, metered_ns) = paired_min_ns(
            samples,
            || sim.run(&threshold, DELTA),
            || metered_sim.run(&threshold, DELTA),
        );
        metrics_ratios.push((n, metered_ns / plain_ns));
        timings.push(PairedTiming {
            label: format!("threshold n = {n} · kernel+metrics"),
            cold_ns: plain_ns,
            memoized_ns: metered_ns,
        });
        println!(
            "threshold n = {n}: dyn {:>12.0}/s   buffered {:>12.0}/s ({:.2}x)   kernel {:>12.0}/s ({:.2}x)   lane {:>12.0}/s ({:.2}x)   metered ({:.3}x of lane)",
            trials_per_sec(trials, dyn_ns),
            trials_per_sec(trials, buffered_ns),
            dyn_ns / buffered_ns,
            trials_per_sec(trials, kernel_ns),
            dyn_ns / kernel_ns,
            trials_per_sec(trials, lane_ns),
            dyn_ns / lane_ns,
            metered_ns / plain_ns,
        );

        let (dyn_ns, kernel_ns) = paired_min_ns(
            samples,
            || sim.run_dyn(&oblivious, DELTA),
            || sequential.run(&oblivious, DELTA),
        );
        timings.push(PairedTiming {
            label: format!("oblivious n = {n} · kernel+buffered"),
            cold_ns: dyn_ns,
            memoized_ns: kernel_ns,
        });
        let (dyn_ns, lane_ns) = paired_min_ns(
            samples,
            || sim.run_dyn(&oblivious, DELTA),
            || sim.run(&oblivious, DELTA),
        );
        timings.push(PairedTiming {
            label: format!("oblivious n = {n} · lane"),
            cold_ns: dyn_ns,
            memoized_ns: lane_ns,
        });
        println!(
            "oblivious n = {n}: dyn {:>12.0}/s   kernel {:>12.0}/s ({:.2}x)   lane {:>12.0}/s ({:.2}x)",
            trials_per_sec(trials, dyn_ns),
            trials_per_sec(trials, kernel_ns),
            dyn_ns / kernel_ns,
            trials_per_sec(trials, lane_ns),
            dyn_ns / lane_ns,
        );
    }

    let path = output_path(smoke, quick);
    write_bench_json(&path, "simulator_throughput", &timings).expect("write bench JSON");
    println!("written: {}", path.display());

    if !smoke && !quick {
        let speedup_of = |label: &str| {
            timings
                .iter()
                .find(|t| t.label == label)
                .unwrap_or_else(|| panic!("row {label} measured"))
                .speedup()
        };
        let kernel_n8 = speedup_of("threshold n = 8 · kernel+buffered");
        assert!(
            kernel_n8 >= 2.0,
            "monomorphized+buffered must be at least 2x over dyn dispatch at n = 8, got {kernel_n8:.2}x"
        );
        let lane_n8 = speedup_of("threshold n = 8 · lane");
        assert!(
            lane_n8 >= 4.0,
            "lane kernel must be at least 4x over the v1 dyn baseline at n = 8, got {lane_n8:.2}x"
        );
        // Observability must be free: the metrics-enabled lane path
        // stays within 2% of the uninstrumented one at every size,
        // judged on the drift-free paired min-time ratio.
        for (n, ratio) in &metrics_ratios {
            assert!(
                *ratio <= 1.02,
                "threshold n = {n}: metrics overhead {:.1}% exceeds the 2% budget",
                (ratio - 1.0) * 100.0
            );
        }
    }
}
