//! V2: CDF/density of sums of uniforms — exact rational vs `f64`
//! paths, general boxes vs the Irwin–Hall special case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rational::Rational;
use uniform_sums::{irwin_hall_cdf, irwin_hall_cdf_f64, BoxSum};

fn box_sum(m: usize) -> BoxSum {
    BoxSum::new(
        (0..m)
            .map(|i| Rational::ratio(i as i64 % 5 + 1, i as i64 % 3 + 2))
            .collect(),
    )
    .expect("positive sides")
}

fn bench_sums(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform_sums");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for m in [4usize, 8, 12] {
        let s = box_sum(m);
        let t = s.support_max() * Rational::ratio(2, 5);
        let tf = t.to_f64();
        group.bench_with_input(BenchmarkId::new("cdf_exact", m), &s, |b, s| {
            b.iter(|| s.cdf(&t));
        });
        group.bench_with_input(BenchmarkId::new("cdf_f64", m), &s, |b, s| {
            b.iter(|| s.cdf_f64(tf));
        });
        group.bench_with_input(BenchmarkId::new("pdf_exact", m), &s, |b, s| {
            b.iter(|| s.pdf(&t));
        });
    }
    for m in [8u32, 16, 24] {
        let t = Rational::ratio(i64::from(m) * 2, 5);
        let tf = t.to_f64();
        group.bench_with_input(BenchmarkId::new("irwin_hall_exact", m), &m, |b, &m| {
            b.iter(|| irwin_hall_cdf(m, &t));
        });
        group.bench_with_input(BenchmarkId::new("irwin_hall_f64", m), &m, |b, &m| {
            b.iter(|| irwin_hall_cdf_f64(m, tf));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sums);
criterion_main!(benches);
