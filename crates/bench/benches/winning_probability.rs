//! Theorem 4.1 / 5.1 evaluation cost: exact vs `f64`, symmetric
//! rank-grouped path vs full `2^n` enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decision::{
    winning_probability_oblivious, winning_probability_oblivious_f64,
    winning_probability_threshold, winning_probability_threshold_f64, Capacity, ObliviousAlgorithm,
    SingleThresholdAlgorithm,
};
use rational::Rational;

fn bench_winning(c: &mut Criterion) {
    let mut group = c.benchmark_group("winning_probability");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [4usize, 8, 12] {
        let cap = Capacity::proportional(n, 3);
        let beta = Rational::ratio(5, 8);
        // Symmetric algorithms take the O(n) rank-grouped path.
        let sym = SingleThresholdAlgorithm::symmetric(n, beta.clone()).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("threshold_symmetric_exact", n),
            &n,
            |b, _| b.iter(|| winning_probability_threshold(&sym, &cap)),
        );
        // A barely-asymmetric vector forces the 2^n enumeration.
        let mut thresholds = vec![beta.clone(); n];
        thresholds[0] = Rational::ratio(5, 9);
        let asym = SingleThresholdAlgorithm::new(thresholds).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("threshold_enumerated_exact", n),
            &n,
            |b, _| b.iter(|| winning_probability_threshold(&asym, &cap)),
        );
        let mut f: Vec<f64> = vec![0.625; n];
        f[0] = 5.0 / 9.0;
        group.bench_with_input(
            BenchmarkId::new("threshold_enumerated_f64", n),
            &n,
            |b, _| b.iter(|| winning_probability_threshold_f64(&f, cap.to_f64())),
        );

        let coin = ObliviousAlgorithm::fair(n);
        group.bench_with_input(
            BenchmarkId::new("oblivious_symmetric_exact", n),
            &n,
            |b, _| b.iter(|| winning_probability_oblivious(&coin, &cap)),
        );
        let af = vec![0.5; n];
        group.bench_with_input(
            BenchmarkId::new("oblivious_enumerated_f64", n),
            &n,
            |b, _| b.iter(|| winning_probability_oblivious_f64(&af, cap.to_f64())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_winning);
criterion_main!(benches);
