//! V1 ablation: Proposition 2.2 volume — pruned DFS vs naive bitmask
//! enumeration vs `f64` fast path vs Monte-Carlo estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::{MonteCarloVolume, SimplexBoxIntersection};
use rational::Rational;

fn polytope(m: usize) -> SimplexBoxIntersection {
    // Mixed ratios so the subset pruning has real work to do.
    let sigma: Vec<Rational> = (0..m)
        .map(|i| Rational::ratio(i as i64 % 3 + 1, 1))
        .collect();
    let pi: Vec<Rational> = (0..m)
        .map(|i| Rational::ratio(1, i as i64 % 4 + 2))
        .collect();
    SimplexBoxIntersection::new(sigma, pi).expect("valid polytope")
}

fn bench_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for m in [4usize, 8, 12] {
        let p = polytope(m);
        group.bench_with_input(BenchmarkId::new("exact_pruned", m), &p, |b, p| {
            b.iter(|| p.volume());
        });
        group.bench_with_input(BenchmarkId::new("exact_bitmask", m), &p, |b, p| {
            b.iter(|| p.volume_unpruned());
        });
        group.bench_with_input(BenchmarkId::new("f64", m), &p, |b, p| {
            b.iter(|| p.volume_f64());
        });
        group.bench_with_input(BenchmarkId::new("monte_carlo_10k", m), &p, |b, p| {
            b.iter(|| MonteCarloVolume::new(7).estimate(p, 10_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_volume);
criterion_main!(benches);
