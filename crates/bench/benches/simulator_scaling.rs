//! Simulator throughput: thread scaling and batch-size ablation of the
//! batched Monte-Carlo engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decision::SingleThresholdAlgorithm;
use rational::Rational;
use simulator::Simulation;

const TRIALS: u64 = 200_000;

fn bench_threads(c: &mut Criterion) {
    let rule = SingleThresholdAlgorithm::symmetric(5, Rational::ratio(5, 8)).expect("valid");
    let mut group = c.benchmark_group("simulator_threads");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(TRIALS));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let sim = Simulation::new(TRIALS, 42).with_threads(threads);
                b.iter(|| sim.run(&rule, 5.0 / 3.0));
            },
        );
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let rule = SingleThresholdAlgorithm::symmetric(5, Rational::ratio(5, 8)).expect("valid");
    let mut group = c.benchmark_group("simulator_batch_size");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(TRIALS));
    for batch in [1_024u64, 16_384, 131_072] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let sim = Simulation::new(TRIALS, 42).with_batch_size(batch);
            b.iter(|| sim.run(&rule, 5.0 / 3.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threads, bench_batch_size);
criterion_main!(benches);
