//! Optimizer cost: the exact symbolic pipeline (piecewise construction
//! plus Sturm maximization) vs the numeric multistart coordinate
//! ascent, plus the root-isolation primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decision::numeric::{maximize_threshold, SearchOptions};
use decision::{symmetric, Capacity};
use polynomial::Polynomial;
use rational::Rational;

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizers");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [3usize, 5, 7] {
        let cap = Capacity::proportional(n, 3);
        group.bench_with_input(BenchmarkId::new("symbolic_analyze", n), &n, |b, &n| {
            b.iter(|| symmetric::analyze(n, &cap));
        });
        let curve = symmetric::analyze(n, &cap).expect("n >= 2");
        let tol = Rational::ratio(1, 1 << 30);
        group.bench_with_input(BenchmarkId::new("symbolic_maximize", n), &n, |b, _| {
            b.iter(|| curve.maximize(&tol));
        });
    }
    let quick = SearchOptions {
        restarts: 2,
        tolerance: 1e-6,
        max_sweeps: 20,
        seed: 1,
    };
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("numeric_multistart", n), &n, |b, &n| {
            b.iter(|| maximize_threshold(n, n as f64 / 3.0, &quick));
        });
    }
    group.finish();
}

fn bench_roots(c: &mut Criterion) {
    let mut group = c.benchmark_group("root_finding");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for degree in [4usize, 8, 12] {
        let roots: Vec<Rational> = (1..=degree as i64)
            .map(|k| Rational::ratio(k, degree as i64 + 1))
            .collect();
        let p = Polynomial::from_roots(&roots);
        group.bench_with_input(BenchmarkId::new("isolate", degree), &p, |b, p| {
            b.iter(|| p.isolate_roots(&Rational::zero(), &Rational::one()));
        });
        let ivs = p.isolate_roots(&Rational::zero(), &Rational::one());
        let tol = Rational::ratio(1, 1 << 30);
        group.bench_with_input(BenchmarkId::new("refine_first_root", degree), &p, |b, p| {
            b.iter(|| p.refine_root(&ivs[0], &tol));
        });
    }
    group.finish();
}

fn bench_conditions(c: &mut Criterion) {
    use decision::{conditions, SingleThresholdAlgorithm};
    let mut group = c.benchmark_group("theorem_5_2");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [3usize, 5, 7] {
        let algo = SingleThresholdAlgorithm::new(
            (0..n)
                .map(|i| Rational::ratio(i as i64 + 2, 2 * n as i64))
                .collect(),
        )
        .expect("valid thresholds");
        let cap = Capacity::proportional(n, 3);
        group.bench_with_input(BenchmarkId::new("partial_piecewise", n), &n, |b, _| {
            b.iter(|| conditions::partial_piecewise(&algo, 0, &cap));
        });
        group.bench_with_input(BenchmarkId::new("exact_gradient", n), &n, |b, _| {
            b.iter(|| conditions::optimality_gradient(&algo, &cap));
        });
    }
    group.finish();
}

fn bench_general_rules(c: &mut Criterion) {
    use decision::rules::{BinZeroSet, GeneralRule};
    let mut group = c.benchmark_group("general_rules");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [3usize, 5, 7] {
        let set = BinZeroSet::new(vec![
            (Rational::zero(), Rational::ratio(1, 4)),
            (Rational::ratio(1, 2), Rational::ratio(3, 4)),
        ])
        .expect("valid intervals");
        let rule = GeneralRule::new(vec![set; n]).expect("n >= 2");
        let cap = Capacity::proportional(n, 3);
        group.bench_with_input(BenchmarkId::new("two_interval_exact", n), &n, |b, _| {
            b.iter(|| rule.winning_probability(&cap));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_symbolic,
    bench_roots,
    bench_conditions,
    bench_general_rules
);
criterion_main!(benches);
