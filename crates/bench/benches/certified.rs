//! Cost of certifying `β*_n` enclosures, and the payoff of the
//! bracket hint the table builder threads from row to row: an
//! unhinted certification pays a coarse argmax scan before it can
//! bracket the optimum; a hinted one (seeded with the previous row's
//! midpoint, exactly what `cargo xtask table` does) starts bracketing
//! immediately.
//!
//! Besides the report lines, this bench writes
//! `results/BENCH_certified.json` with the paired unhinted/hinted
//! medians and their speedups (`cold` = unhinted, `memoized` =
//! hinted, reusing the shared paired-timing schema).

use bench::{write_bench_json, PairedTiming};
use criterion::black_box;
use decision::certified::certify;
use std::path::Path;
use std::time::Instant;

const SAMPLES: usize = 5;

/// Median wall-clock nanoseconds of `routine` over [`SAMPLES`] runs.
fn median_ns(mut routine: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut timings = Vec::new();
    println!("certified: β*_n enclosure certification (width ≤ 1e-9)");
    for n in [16u32, 24, 32] {
        let reference = certify(n, None).expect("certification succeeds");
        let hint = 0.5 * (reference.beta.lo + reference.beta.hi);

        // The hint is an accelerator, never an oracle: the hinted
        // enclosure may bracket differently but must still overlap
        // the unhinted one (both certify the same β*_n) and meet the
        // same width contract.
        let hinted = certify(n, Some(hint)).expect("hinted certification succeeds");
        assert!(
            hinted.beta.lo <= reference.beta.hi && reference.beta.lo <= hinted.beta.hi,
            "hinted certification drifted at n = {n}"
        );
        assert!(
            hinted.beta.hi - hinted.beta.lo <= decision::certified::WIDTH_TARGET,
            "hinted enclosure too wide at n = {n}"
        );

        let cold_ns = median_ns(|| certify(n, None).expect("certification succeeds").beta.lo);
        let memoized_ns = median_ns(|| {
            certify(n, Some(hint))
                .expect("hinted certification succeeds")
                .beta
                .lo
        });
        let t = PairedTiming {
            label: format!("n = {n}"),
            cold_ns,
            memoized_ns,
        };
        println!(
            "certified/{:<8} unhinted {:>12.1} ns   hinted {:>12.1} ns   speedup {:.2}x",
            t.label,
            t.cold_ns,
            t.memoized_ns,
            t.speedup()
        );
        timings.push(t);
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_certified.json");
    write_bench_json(&path, "certified", &timings).expect("write bench JSON");
    println!("written: {}", path.display());
}
