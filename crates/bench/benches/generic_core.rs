//! Memoization payoff of the generic analytic core: sweeping the
//! symmetric oblivious winning probability over an α grid with a
//! shared [`EvalContext`] (Irwin–Hall tables built once per `(n, δ)`)
//! versus a cold context per evaluation.
//!
//! Besides the usual per-benchmark report lines, this bench writes
//! `results/BENCH_generic_core.json` with the paired cold/memoized
//! medians and their speedups.

use bench::{write_bench_json, PairedTiming};
use criterion::black_box;
use decision::{winning_probability_oblivious_in, EvalContext};
use std::path::Path;
use std::time::Instant;

const DELTA: f64 = 1.0;
const GRID: usize = 64;
const SAMPLES: usize = 31;

/// One full α sweep with a fresh context per evaluation: every grid
/// point rebuilds the inclusion–exclusion tables from scratch.
fn sweep_cold(n: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..=GRID {
        let alpha = k as f64 / GRID as f64;
        let mut ctx = EvalContext::new();
        acc += winning_probability_oblivious_in(&mut ctx, &vec![alpha; n], &DELTA)
            .expect("valid symmetric system");
    }
    acc
}

/// One full α sweep through a shared context: after the first grid
/// point the `(n, δ)` tables are warm and every later evaluation is a
/// cache hit.
fn sweep_memoized(n: usize, ctx: &mut EvalContext<f64>) -> f64 {
    let mut acc = 0.0;
    for k in 0..=GRID {
        let alpha = k as f64 / GRID as f64;
        acc += winning_probability_oblivious_in(ctx, &vec![alpha; n], &DELTA)
            .expect("valid symmetric system");
    }
    acc
}

/// Median wall-clock nanoseconds of `routine` over [`SAMPLES`] runs.
fn median_ns(mut routine: impl FnMut() -> f64) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut timings = Vec::new();
    println!(
        "generic_core: α-grid sweep ({} points), δ = {DELTA}",
        GRID + 1
    );
    for n in 3usize..=8 {
        // Memoization must be invisible: both paths agree bit-for-bit.
        let mut shared = EvalContext::new();
        assert_eq!(sweep_cold(n), sweep_memoized(n, &mut shared));

        let cold_ns = median_ns(|| sweep_cold(n));
        let memoized_ns = median_ns(|| sweep_memoized(n, &mut shared));
        let t = PairedTiming {
            label: format!("n = {n}"),
            cold_ns,
            memoized_ns,
        };
        println!(
            "generic_core/{:<8} cold {:>10.1} ns/sweep   memoized {:>10.1} ns/sweep   speedup {:.2}x",
            t.label,
            t.cold_ns,
            t.memoized_ns,
            t.speedup()
        );
        timings.push(t);
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_generic_core.json");
    write_bench_json(&path, "generic_core", &timings).expect("write bench JSON");
    println!("written: {}", path.display());

    let at_n8 = timings.last().expect("n = 8 measured").speedup();
    assert!(
        at_n8 >= 2.0,
        "memoized sweep must be at least 2x over the cold path at n = 8, got {at_n8:.2}x"
    );
}
