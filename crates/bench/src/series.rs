//! Data-series containers for figure regeneration.

/// One sample of a curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Abscissa (e.g. the threshold `β`).
    pub x: f64,
    /// Ordinate (e.g. the winning probability).
    pub y: f64,
}

/// A labelled curve, one per figure line.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"n = 3"`.
    pub label: String,
    /// Samples in ascending `x`.
    pub points: Vec<Point>,
}

impl Series {
    /// Builds a series from `(x, y)` pairs.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points: points.into_iter().map(|(x, y)| Point { x, y }).collect(),
        }
    }

    /// The sample with the largest `y`.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn peak(&self) -> Point {
        *self
            .points
            .iter()
            .max_by(|a, b| a.y.total_cmp(&b.y))
            .expect("non-empty series")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_finds_maximum() {
        let s = Series::new("test", vec![(0.0, 0.1), (0.5, 0.9), (1.0, 0.3)]);
        assert_eq!(s.peak(), Point { x: 0.5, y: 0.9 });
        assert_eq!(s.label, "test");
    }
}
