//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!   figures                 — run everything
//!   figures fig1            — Figure 1 (δ = 1) CSV + peak summary
//!   figures fig2            — Figure 2 (δ = n/3) CSV + peak summary
//!   figures table-oblivious — Theorem 4.3 table
//!   figures case-n3         — Section 5.2.1 exact case analysis
//!   figures case-n4         — Section 5.2.2 exact case analysis
//!   figures tradeoff        — knowledge-vs-uniformity table
//!   figures validate        — closed forms vs Monte-Carlo
//!
//! CSV output lands in `results/`.

use bench::{
    case_analysis, figure1, figure2, render_markdown_table, table_oblivious, tradeoff_table,
    validation_table, write_csv, Series,
};
use decision::Capacity;
use rational::Rational;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map_or("all", String::as_str);
    let all = which == "all";

    if all || which == "fig1" {
        fig(1, &figure1(bench::DEFAULT_SAMPLES));
    }
    if all || which == "fig2" {
        fig(2, &figure2(bench::DEFAULT_SAMPLES));
    }
    if all || which == "table-oblivious" {
        oblivious_table();
    }
    if all || which == "case-n3" {
        case(3, &Capacity::unit(), "paper §5.2.1");
    }
    if all || which == "case-n4" {
        case(
            4,
            &Capacity::new(Rational::ratio(4, 3)).expect("positive"),
            "paper §5.2.2",
        );
    }
    if all || which == "tradeoff" {
        tradeoff();
    }
    if all || which == "validate" {
        validate();
    }
    if all || which == "faults" {
        faults();
    }
}

fn faults() {
    println!("## Crash-fault sensitivity (n = 4, δ = 1, exact mixtures)");
    let rows = bench::fault_table(4, &Capacity::unit(), 10);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.p_crash.to_string(),
                format!("{:.6}", row.threshold),
                format!("{:.6}", row.oblivious),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(&["p_crash", "threshold 5/8", "oblivious 1/2"], &rendered)
    );
}

fn fig(index: usize, curves: &[Series]) {
    let path_name = format!("results/figure{index}.csv");
    let path = Path::new(&path_name);
    write_csv(path, curves).expect("write CSV");
    println!("## Figure {index} (written to {})", path.display());
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let peak = c.peak();
            vec![
                c.label.clone(),
                format!("{:.4}", peak.x),
                format!("{:.4}", peak.y),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(&["series", "argmax β", "max P"], &rows)
    );
}

fn oblivious_table() {
    println!("## Theorem 4.3: oblivious optimum (α* = 1/2 for every n)");
    let rows = table_oblivious(&[2, 3, 4, 5, 6, 8, 10, 12], |n| {
        Capacity::proportional(n, 3)
    });
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.n.to_string(),
                row.capacity.to_string(),
                format!("{} ≈ {:.6}", row.uniform_value, row.uniform_value.to_f64()),
                format!("{}/{}", row.split, row.n - row.split),
                format!("{:.6}", row.split_value.to_f64()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &["n", "δ", "P(1/2) exact", "best split", "split value"],
            &rendered
        )
    );
}

fn case(n: usize, capacity: &Capacity, which: &str) {
    let case = case_analysis(n, capacity);
    println!("## Case analysis n = {n}, {capacity} ({which})");
    println!("break-points: {:?}", case.breakpoints);
    for (i, piece) in case.pieces.iter().enumerate() {
        println!(
            "  P(β) on ({}, {}] = {piece}",
            case.breakpoints[i],
            case.breakpoints[i + 1]
        );
    }
    println!("optimality conditions:");
    for c in &case.conditions {
        println!("  {c}");
    }
    println!(
        "optimum: β* ≈ {:.10}, P* ≈ {:.10}\n",
        case.beta_star, case.p_star
    );
}

fn tradeoff() {
    println!("## Knowledge vs uniformity (δ = n/3)");
    let rows = tradeoff_table(&[2, 3, 4, 5, 6, 7, 8], |n| Capacity::proportional(n, 3));
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.n.to_string(),
                row.capacity.to_string(),
                format!("{:.6}", row.oblivious),
                format!("{:.6}", row.beta_star),
                format!("{:.6}", row.threshold),
                format!("{:.6}", row.partition),
                format!("{:.6}", row.omniscient),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "n",
                "δ",
                "oblivious 1/2",
                "β*",
                "threshold P*",
                "partition",
                "omniscient (MC)",
            ],
            &rendered
        )
    );
}

fn validate() {
    println!("## Closed forms vs Monte-Carlo (1M rounds)");
    let rows = validation_table(1_000_000, 42);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                format!("{:.6}", row.exact),
                format!("{:.6}", row.simulated),
                format!("{:.2}", row.z_score),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(&["algorithm", "exact", "simulated", "|z|"], &rendered)
    );
}
