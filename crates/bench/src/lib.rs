//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (and the validation experiments of DESIGN.md)
//! as CSV/markdown series.
//!
//! The `figures` binary drives this library; the Criterion benches
//! reuse its workload builders so the measured code paths are exactly
//! the ones that produce the published numbers.
//!
//! Experiment index (see DESIGN.md for the full mapping):
//!
//! * **F1** — Figure 1: `P(β)` for `n = 3, 4, 5` at fixed `δ = 1`.
//! * **F2** — Figure 2: `P(β)` for `n = 3, 4, 5` at scaled `δ = n/3`.
//! * **T1** — Theorem 4.3: oblivious optimum table over `n`, `δ`.
//! * **T2/T3** — Sections 5.2.1/5.2.2: exact case analyses.
//! * **T4** — knowledge-vs-uniformity trade-off table.
//! * **V1–V3** — formula-vs-Monte-Carlo validation experiments.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod output;
pub mod series;

pub use experiments::*;
pub use output::{render_markdown_table, write_bench_json, write_csv, PairedTiming};
pub use series::{Point, Series};
