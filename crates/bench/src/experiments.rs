//! The experiment builders behind every figure and table.

use crate::series::Series;
use decision::{
    oblivious, symmetric, winning_probability_threshold, Capacity, ObliviousAlgorithm,
    SingleThresholdAlgorithm,
};
use rational::Rational;
use simulator::{full_information_win_rate, Simulation};

/// Default grid resolution for figure curves.
pub const DEFAULT_SAMPLES: usize = 200;

/// F1 — Figure 1: winning probability vs `β` for `n = 3, 4, 5` at the
/// Papadimitriou-Yannakakis capacity `δ = 1`.
///
/// # Panics
///
/// Panics if `samples < 2`.
#[must_use]
pub fn figure1(samples: usize) -> Vec<Series> {
    figure_curves(&[3, 4, 5], |_| Capacity::unit(), samples)
}

/// F2 — Figure 2: winning probability vs `β` for `n = 3, 4, 5` under
/// the paper's scaling rule `δ = n/3` ("compensate for the increase in
/// the number of players").
///
/// # Panics
///
/// Panics if `samples < 2`.
#[must_use]
pub fn figure2(samples: usize) -> Vec<Series> {
    figure_curves(&[3, 4, 5], |n| Capacity::proportional(n, 3), samples)
}

/// Samples the exact piecewise polynomial `P(β)` on a uniform grid for
/// each system size.
///
/// # Panics
///
/// Panics if `samples < 2` or any `n < 2`.
#[must_use]
pub fn figure_curves(
    ns: &[usize],
    capacity_of: impl Fn(usize) -> Capacity,
    samples: usize,
) -> Vec<Series> {
    assert!(samples >= 2, "need at least two grid points");
    ns.iter()
        .map(|&n| {
            let cap = capacity_of(n);
            let curve = symmetric::analyze(n, &cap).expect("n >= 2");
            let points = (0..=samples)
                .map(|k| {
                    let beta = k as f64 / samples as f64;
                    let p = curve.eval_f64(beta).expect("β in domain");
                    (beta, p)
                })
                .collect();
            Series::new(format!("n = {n} ({cap})"), points)
        })
        .collect()
}

/// One row of the oblivious-optimum table (T1).
#[derive(Clone, Debug, PartialEq)]
pub struct ObliviousRow {
    /// System size.
    pub n: usize,
    /// Capacity used.
    pub capacity: Capacity,
    /// The symmetric optimum `P(1/2)` (Theorem 4.3), exact.
    pub uniform_value: Rational,
    /// Best deterministic split size (bin-0 players).
    pub split: usize,
    /// Winning probability of the best deterministic split, exact.
    pub split_value: Rational,
}

/// T1 — the oblivious optimum across sizes and capacities, alongside
/// the deterministic-partition corner that the interior analysis does
/// not cover.
///
/// # Panics
///
/// Panics if any `n < 2`.
#[must_use]
pub fn table_oblivious(ns: &[usize], capacity_of: impl Fn(usize) -> Capacity) -> Vec<ObliviousRow> {
    ns.iter()
        .map(|&n| {
            let capacity = capacity_of(n);
            let opt = oblivious::optimal(n, &capacity).expect("n >= 2");
            let split = oblivious::best_deterministic_split(n, &capacity).expect("n >= 2");
            ObliviousRow {
                n,
                capacity,
                uniform_value: opt.value,
                split: split.bin0_size,
                split_value: split.value,
            }
        })
        .collect()
}

/// The exact symbolic case analysis of a symmetric threshold instance
/// (T2 for `n = 3, δ = 1`; T3 for `n = 4, δ = 4/3`).
#[derive(Clone, Debug)]
pub struct CaseAnalysis {
    /// System size.
    pub n: usize,
    /// Capacity used.
    pub capacity: Capacity,
    /// Interval endpoints of the piecewise polynomial.
    pub breakpoints: Vec<Rational>,
    /// Rendered polynomial pieces, left to right.
    pub pieces: Vec<String>,
    /// Rendered per-piece optimality conditions (`P'(β) = 0`).
    pub conditions: Vec<String>,
    /// The optimal threshold (refined rational approximation).
    pub beta_star: f64,
    /// The optimal winning probability.
    pub p_star: f64,
}

/// Runs the full symbolic case analysis for `(n, δ)`.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn case_analysis(n: usize, capacity: &Capacity) -> CaseAnalysis {
    let curve = symmetric::analyze(n, capacity).expect("n >= 2");
    let conditions = symmetric::optimality_conditions(n, capacity)
        .expect("n >= 2")
        .into_iter()
        .map(|((lo, hi), dp)| format!("on ({lo}, {hi}]: {dp} = 0"))
        .collect();
    let best = curve.maximize(&Rational::ratio(1, 1_000_000_000_000));
    CaseAnalysis {
        n,
        capacity: capacity.clone(),
        breakpoints: curve.breakpoints().to_vec(),
        pieces: curve.pieces().iter().map(ToString::to_string).collect(),
        conditions,
        beta_star: best.argmax.to_f64(),
        p_star: best.value.to_f64(),
    }
}

/// One row of the knowledge-vs-uniformity trade-off table (T4).
#[derive(Clone, Debug)]
pub struct TradeoffRow {
    /// System size.
    pub n: usize,
    /// Capacity used.
    pub capacity: Capacity,
    /// Oblivious symmetric optimum `P(1/2)`.
    pub oblivious: f64,
    /// Optimal symmetric threshold.
    pub beta_star: f64,
    /// Its winning probability.
    pub threshold: f64,
    /// Best deterministic partition value.
    pub partition: f64,
    /// Monte-Carlo estimate of the full-information upper bound (an
    /// omniscient coordinator splitting the realized inputs).
    pub omniscient: f64,
}

/// T4 — the trade-off table across system sizes.
///
/// # Panics
///
/// Panics if any `n < 2`.
#[must_use]
pub fn tradeoff_table(ns: &[usize], capacity_of: impl Fn(usize) -> Capacity) -> Vec<TradeoffRow> {
    let tol = Rational::ratio(1, 1 << 40);
    ns.iter()
        .map(|&n| {
            let capacity = capacity_of(n);
            let coin = oblivious::optimal_value(n, &capacity).expect("n >= 2");
            let best = symmetric::analyze(n, &capacity)
                .expect("n >= 2")
                .maximize(&tol);
            let split = oblivious::best_deterministic_split(n, &capacity).expect("n >= 2");
            let omniscient = full_information_win_rate(n, capacity.to_f64(), 200_000, 7 + n as u64);
            TradeoffRow {
                n,
                capacity,
                oblivious: coin.to_f64(),
                beta_star: best.argmax.to_f64(),
                threshold: best.value.to_f64(),
                partition: split.value.to_f64(),
                omniscient: omniscient.estimate,
            }
        })
        .collect()
}

/// One row of the closed-form-vs-simulation validation table (V3).
#[derive(Clone, Debug)]
pub struct ValidationRow {
    /// Human-readable description of the algorithm.
    pub label: String,
    /// Exact winning probability.
    pub exact: f64,
    /// Monte-Carlo estimate.
    pub simulated: f64,
    /// `|exact − simulated|` in units of the standard error.
    pub z_score: f64,
}

/// V3 — validates the closed forms against the batched simulator.
///
/// # Panics
///
/// Panics if `trials` is zero.
#[must_use]
pub fn validation_table(trials: u64, seed: u64) -> Vec<ValidationRow> {
    let mut rows = Vec::new();
    let sim = Simulation::new(trials, seed);

    for (n, delta) in [
        (3usize, Rational::one()),
        (4, Rational::ratio(4, 3)),
        (5, Rational::ratio(5, 3)),
    ] {
        let cap = Capacity::new(delta).expect("positive");

        let coin = ObliviousAlgorithm::fair(n);
        let exact = oblivious::optimal_value(n, &cap).expect("n >= 2").to_f64();
        let report = sim.run(&coin, cap.to_f64());
        rows.push(ValidationRow {
            label: format!("oblivious 1/2, n={n}, {cap}"),
            exact,
            simulated: report.estimate,
            z_score: (report.estimate - exact).abs()
                / report.std_error.max(contracts::tolerances::MIN_STD_ERROR),
        });

        let beta = Rational::ratio(5, 8);
        let th = SingleThresholdAlgorithm::symmetric(n, beta).expect("valid β");
        let exact = winning_probability_threshold(&th, &cap)
            .expect("exact")
            .to_f64();
        let report = sim.run(&th, cap.to_f64());
        rows.push(ValidationRow {
            label: format!("threshold 5/8, n={n}, {cap}"),
            exact,
            simulated: report.estimate,
            z_score: (report.estimate - exact).abs()
                / report.std_error.max(contracts::tolerances::MIN_STD_ERROR),
        });
    }
    rows
}

/// One row of the crash-fault sensitivity table (extension
/// experiment E1 in DESIGN.md).
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// Crash probability per player.
    pub p_crash: Rational,
    /// Exact winning probability of the threshold algorithm.
    pub threshold: f64,
    /// Exact winning probability of the fair oblivious coin.
    pub oblivious: f64,
}

/// E1 — crash-fault sensitivity: exact winning probabilities under
/// independent player crashes, for the optimal-ish threshold rule and
/// the fair coin.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn fault_table(n: usize, capacity: &Capacity, steps: i64) -> Vec<FaultRow> {
    let threshold = SingleThresholdAlgorithm::symmetric(n, Rational::ratio(5, 8)).expect("valid β");
    let coin = ObliviousAlgorithm::fair(n);
    (0..=steps)
        .map(|k| {
            let p_crash = Rational::ratio(k, steps);
            FaultRow {
                threshold: decision::faults::threshold_with_crashes(&threshold, capacity, &p_crash)
                    .expect("valid inputs")
                    .to_f64(),
                oblivious: decision::faults::oblivious_with_crashes(&coin, capacity, &p_crash)
                    .expect("valid inputs")
                    .to_f64(),
                p_crash,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_peaks_match_known_optima() {
        let curves = figure1(400);
        assert_eq!(curves.len(), 3);
        // n = 3 peak near 0.622 / 0.5446.
        let p3 = curves[0].peak();
        assert!((p3.x - 0.6225).abs() < 0.01, "peak at {}", p3.x);
        assert!((p3.y - 0.5446).abs() < 0.001);
    }

    #[test]
    fn figure2_series_cover_unit_interval() {
        let curves = figure2(50);
        for c in &curves {
            assert_eq!(c.points.len(), 51);
            assert_eq!(c.points[0].x, 0.0);
            assert_eq!(c.points[50].x, 1.0);
            assert!(c.points.iter().all(|p| (0.0..=1.0).contains(&p.y)));
        }
    }

    #[test]
    fn oblivious_table_uniform_value_is_constant_in_alpha_star() {
        let rows = table_oblivious(&[2, 3, 4], |_| Capacity::unit());
        // Values decrease with n at fixed δ = 1 (harder to pack).
        assert!(rows[0].uniform_value > rows[1].uniform_value);
        assert!(rows[1].uniform_value > rows[2].uniform_value);
        // Splits are balanced.
        for row in &rows {
            assert!(row.split == row.n / 2 || row.split == row.n - row.n / 2);
        }
    }

    #[test]
    fn case_analysis_t2_shape() {
        let case = case_analysis(3, &Capacity::unit());
        assert_eq!(case.breakpoints.len(), 4);
        assert_eq!(case.pieces.len(), 3);
        assert_eq!(case.conditions.len(), 3);
        assert!((case.beta_star - 0.62204).abs() < 1e-4);
        assert!((case.p_star - 0.54463).abs() < 1e-4);
    }

    #[test]
    fn validation_rows_are_tight() {
        for row in validation_table(120_000, 9) {
            assert!(row.z_score < 4.5, "{}: z = {}", row.label, row.z_score);
        }
    }

    #[test]
    fn fault_table_is_monotone_and_anchored() {
        let rows = fault_table(4, &Capacity::unit(), 5);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[1].threshold >= w[0].threshold);
            assert!(w[1].oblivious >= w[0].oblivious);
        }
        assert!((rows.last().unwrap().threshold - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tradeoff_table_reports_flagship_result() {
        let rows = tradeoffs_for_test();
        let n3 = &rows[0];
        assert!(n3.threshold > n3.oblivious, "threshold wins at n=3, δ=1");
    }

    fn tradeoffs_for_test() -> Vec<TradeoffRow> {
        tradeoff_table(&[3], |_| Capacity::unit())
    }

    #[test]
    fn omniscient_dominates_every_algorithm_column() {
        for row in tradeoff_table(&[3, 4], |n| Capacity::proportional(n, 3)) {
            let best_algo = row.oblivious.max(row.threshold).max(row.partition);
            // Allow Monte-Carlo noise on the omniscient estimate.
            assert!(
                row.omniscient > best_algo - 0.01,
                "n = {}: omniscient {} vs best {}",
                row.n,
                row.omniscient,
                best_algo
            );
        }
    }
}
