//! CSV and markdown rendering of experiment outputs.

use crate::series::Series;
use std::io::{self, Write};
use std::path::Path;

/// Writes curves to a CSV file with columns `series,x,y`.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_csv(path: &Path, series: &[Series]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "series,x,y")?;
    for s in series {
        for p in &s.points {
            writeln!(file, "{},{},{}", s.label, p.x, p.y)?;
        }
    }
    Ok(())
}

/// One paired timing measurement: the same workload through a cold
/// path and a memoized path.
#[derive(Clone, Debug, PartialEq)]
pub struct PairedTiming {
    /// What was measured (e.g. `"n = 8"`).
    pub label: String,
    /// Median time of the cold path, in nanoseconds.
    pub cold_ns: f64,
    /// Median time of the memoized path, in nanoseconds.
    pub memoized_ns: f64,
}

impl PairedTiming {
    /// Cold time over memoized time (`> 1` means memoization pays).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cold_ns / self.memoized_ns
    }
}

/// Writes paired cold/memoized timings as a small JSON document
/// (`{"bench": ..., "results": [{"label", "cold_ns", "memoized_ns",
/// "speedup"}, ...]}`), creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_bench_json(path: &Path, bench: &str, timings: &[PairedTiming]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{{")?;
    writeln!(file, "  \"bench\": \"{bench}\",")?;
    writeln!(file, "  \"results\": [")?;
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        writeln!(
            file,
            "    {{\"label\": \"{}\", \"cold_ns\": {:.1}, \"memoized_ns\": {:.1}, \"speedup\": {:.3}}}{comma}",
            t.label,
            t.cold_ns,
            t.memoized_ns,
            t.speedup()
        )?;
    }
    writeln!(file, "  ]")?;
    writeln!(file, "}}")?;
    Ok(())
}

/// Renders rows as a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
#[must_use]
pub fn render_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("nocomm-bench-test");
        let path = dir.join("curve.csv");
        let series = vec![Series::new("n = 3", vec![(0.0, 0.1), (1.0, 0.2)])];
        write_csv(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "series,x,y\nn = 3,0,0.1\nn = 3,1,0.2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_json_shape() {
        let dir = std::env::temp_dir().join("nocomm-bench-json-test");
        let path = dir.join("BENCH_test.json");
        let timings = vec![PairedTiming {
            label: "n = 8".into(),
            cold_ns: 1000.0,
            memoized_ns: 250.0,
        }];
        write_bench_json(&path, "generic_core", &timings).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"generic_core\""));
        assert!(text.contains("\"label\": \"n = 8\""));
        assert!(text.contains("\"speedup\": 4.000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn speedup_is_cold_over_memoized() {
        let t = PairedTiming {
            label: "x".into(),
            cold_ns: 300.0,
            memoized_ns: 100.0,
        };
        assert!((t.speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn markdown_table_shape() {
        let md = render_markdown_table(
            &["n", "value"],
            &[
                vec!["3".into(), "0.54".into()],
                vec!["4".into(), "0.43".into()],
            ],
        );
        assert!(md.starts_with("| n | value |\n|---|---|\n"));
        assert!(md.contains("| 3 | 0.54 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
