//! CSV and markdown rendering of experiment outputs.

use crate::series::Series;
use std::io::{self, Write};
use std::path::Path;

/// Writes curves to a CSV file with columns `series,x,y`.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_csv(path: &Path, series: &[Series]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "series,x,y")?;
    for s in series {
        for p in &s.points {
            writeln!(file, "{},{},{}", s.label, p.x, p.y)?;
        }
    }
    Ok(())
}

/// Renders rows as a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
#[must_use]
pub fn render_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("nocomm-bench-test");
        let path = dir.join("curve.csv");
        let series = vec![Series::new("n = 3", vec![(0.0, 0.1), (1.0, 0.2)])];
        write_csv(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "series,x,y\nn = 3,0,0.1\nn = 3,1,0.2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markdown_table_shape() {
        let md = render_markdown_table(
            &["n", "value"],
            &[
                vec!["3".into(), "0.54".into()],
                vec!["4".into(), "0.43".into()],
            ],
        );
        assert!(md.starts_with("| n | value |\n|---|---|\n"));
        assert!(md.contains("| 3 | 0.54 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
