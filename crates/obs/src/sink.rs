//! The metric event trait instrumented layers talk to.

/// Receiver of metric events, keyed by `&'static str`.
///
/// Both methods default to no-ops, so a sink implements only the
/// events it cares about and unknown keys are dropped silently —
/// instrumented code never needs to know which sink (if any) is
/// listening. Implementations must be cheap and non-blocking from
/// many threads; the engine flushes at batch granularity, never per
/// trial.
pub trait MetricsSink: Send + Sync {
    /// Adds `n` to the monotonic counter named `key`.
    #[inline]
    fn add(&self, key: &'static str, n: u64) {
        let _ = (key, n);
    }

    /// Records one sample `value` into the histogram named `key`.
    #[inline]
    fn record(&self, key: &'static str, value: u64) {
        let _ = (key, value);
    }
}

/// The default sink: drops every event.
///
/// [`MetricsSink`] consumers hold an `Arc<dyn MetricsSink>` that
/// defaults to this, so uninstrumented runs pay only the (per-flush,
/// not per-trial) virtual call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn noop_sink_accepts_every_event() {
        NoopSink.add("anything", 7);
        NoopSink.record("anything", 7);
    }

    #[test]
    fn partial_sinks_route_only_their_keys() {
        #[derive(Default)]
        struct OneKey(Counter);
        impl MetricsSink for OneKey {
            fn add(&self, key: &'static str, n: u64) {
                if key == "kept" {
                    self.0.add(n);
                }
            }
        }
        let sink = OneKey::default();
        sink.add("kept", 2);
        sink.add("dropped", 40);
        sink.record("kept", 9); // record is not implemented: dropped
        assert_eq!(sink.0.get(), 2);
    }

    #[test]
    fn trait_objects_dispatch() {
        let sink: &dyn MetricsSink = &NoopSink;
        sink.add("key", 1);
        sink.record("key", 1);
    }
}
