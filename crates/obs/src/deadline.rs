//! A saturating wall-clock deadline for bounded waits.

use std::time::{Duration, Instant};

/// A fixed point in time that every blocking wait can be measured
/// against.
///
/// The engine's fault-tolerance layer hands one `Deadline` to a whole
/// unit of work (a pooled run, a supervised job) and derives every
/// individual timeout from [`Deadline::remaining`], so no single wait
/// — and no *sum* of waits — can outlive the budget. All arithmetic
/// saturates: an expired deadline reports a remaining budget of zero
/// rather than panicking or going negative.
///
/// # Examples
///
/// ```
/// use obs::Deadline;
/// use std::time::Duration;
///
/// let deadline = Deadline::after(Duration::from_secs(60));
/// assert!(!deadline.expired());
/// assert!(deadline.remaining() <= Duration::from_secs(60));
///
/// let now = Deadline::after(Duration::ZERO);
/// assert!(now.expired());
/// assert_eq!(now.remaining(), Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget).unwrap_or_else(|| {
                // xtask:allow(no-panic): unreachable fallback — an
                // Instant overflow needs a budget of centuries; fall
                // back to "now" (immediately expired) instead.
                Instant::now()
            }),
        }
    }

    /// The time budget left before the deadline, saturating at zero.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }

    /// The underlying instant, for APIs that carry an absolute time.
    #[must_use]
    pub fn instant(&self) -> Instant {
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget() {
        let d = Deadline::after(Duration::from_secs(30));
        assert!(!d.expired());
        let rem = d.remaining();
        assert!(rem > Duration::from_secs(25) && rem <= Duration::from_secs(30));
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn remaining_is_monotone_nonincreasing() {
        let d = Deadline::after(Duration::from_millis(200));
        let first = d.remaining();
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.remaining() <= first);
    }

    #[test]
    fn instant_round_trips() {
        let d = Deadline::after(Duration::from_secs(1));
        assert!(d.instant() > Instant::now());
    }
}
