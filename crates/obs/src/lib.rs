//! Dependency-free observability primitives for the workspace's hot
//! paths.
//!
//! Like the in-repo `rand`/`proptest`/`criterion` shims, this crate
//! vendors no third-party code: it provides exactly the metric
//! surface the Monte-Carlo engine needs and nothing more.
//!
//! # Architecture
//!
//! Instrumented layers talk to a [`MetricsSink`] — a small trait with
//! two event kinds, monotonic counter increments ([`MetricsSink::add`])
//! and histogram samples ([`MetricsSink::record`]), keyed by
//! `&'static str`. Every method has a no-op default and [`NoopSink`]
//! implements none of them, so an uninstrumented run pays nothing
//! beyond a branch-free virtual call at *flush* granularity: the
//! engine's hot loops accumulate plain local integers and flush once
//! per batch of work, never per trial or per draw.
//!
//! Concrete sinks are built from the primitives here:
//!
//! * [`Counter`] — a relaxed atomic monotonic counter.
//! * [`Histogram`] — fixed power-of-two buckets over `u64` samples
//!   (65 buckets cover the full range; no allocation on record).
//! * [`SpanTimer`] — a drop-guard that records a wall-clock span, in
//!   nanoseconds, into a sink histogram key.
//! * [`Deadline`] — a saturating wall-clock deadline so every blocking
//!   wait in a supervised pipeline can be bounded against one budget.
//!
//! All primitives are lock-free and `Sync`; snapshots are consistent
//! enough for reporting (each cell is read atomically; cross-cell
//! skew is bounded by in-flight flushes, which callers quiesce by
//! snapshotting between runs).
//!
//! # Examples
//!
//! ```
//! use obs::{Counter, Histogram, MetricsSink, NoopSink};
//!
//! // A sink that only cares about one counter.
//! #[derive(Default)]
//! struct Trials(Counter);
//! impl MetricsSink for Trials {
//!     fn add(&self, key: &'static str, n: u64) {
//!         if key == "engine.trials" {
//!             self.0.add(n);
//!         }
//!     }
//! }
//!
//! let sink = Trials::default();
//! sink.add("engine.trials", 10_000);
//! sink.add("engine.wins", 5_000); // routed nowhere, by choice
//! assert_eq!(sink.0.get(), 10_000);
//!
//! // The no-op default: same call sites, zero state.
//! NoopSink.add("engine.trials", 10_000);
//! ```

#![forbid(unsafe_code)]

mod counter;
mod deadline;
mod histogram;
mod sink;
mod timer;

pub use counter::Counter;
pub use deadline::Deadline;
pub use histogram::{Histogram, HistogramBucket, HistogramSnapshot};
pub use sink::{MetricsSink, NoopSink};
pub use timer::SpanTimer;
