//! A relaxed atomic monotonic counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic event counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization. Wrapping on overflow inherits `u64` semantics
/// (unreachable for any realistic workload — `2^64` events).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    /// Clones the current value into a fresh counter (the clone does
    /// not share updates with the original).
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_adds_and_increments() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.add(41);
        c.incr();
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn clone_detaches_from_the_original() {
        let c = Counter::new();
        c.add(5);
        let d = c.clone();
        c.add(1);
        assert_eq!(c.get(), 6);
        assert_eq!(d.get(), 5);
    }
}
