//! Fixed power-of-two bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` sample
/// (0 through 64).
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` samples with power-of-two
/// buckets.
///
/// Bucket `i` holds samples whose bit length is `i`: bucket 0 is
/// exactly `{0}`, bucket `i ≥ 1` covers `[2^(i-1), 2^i − 1]`. The
/// geometry is fixed, so recording never allocates or locks — one
/// relaxed `fetch_add` on the bucket plus two on the running
/// count/sum. Suited to latency-in-nanoseconds and size-in-items
/// distributions where ~2x resolution is plenty.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let index = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded (wrapping on `u64` overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution, keeping only
    /// occupied buckets.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then_some(HistogramBucket {
                    le: upper_bound(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Inclusive upper bound of bucket `index`.
fn upper_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// One occupied bucket of a [`HistogramSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket's sample range.
    pub le: u64,
    /// Number of samples that fell in the bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples recorded.
    pub sum: u64,
    /// Occupied buckets, in increasing `le` order.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSnapshot {
    /// Mean sample value, or zero for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_bit_length_buckets() {
        let h = Histogram::new();
        h.record(0); // bucket 0, le 0
        h.record(1); // bucket 1, le 1
        h.record(2); // bucket 2, le 3
        h.record(3); // bucket 2, le 3
        h.record(1024); // bucket 11, le 2047
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1030);
        assert_eq!(
            snap.buckets,
            vec![
                HistogramBucket { le: 0, count: 1 },
                HistogramBucket { le: 1, count: 1 },
                HistogramBucket { le: 3, count: 2 },
                HistogramBucket { le: 2047, count: 1 },
            ]
        );
    }

    #[test]
    fn extremes_are_representable() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].le, u64::MAX);
    }

    #[test]
    fn bucket_counts_sum_to_the_total() {
        let h = Histogram::new();
        for v in 0..1_000u64 {
            h.record(v * v);
        }
        let snap = h.snapshot();
        let bucketed: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucketed, snap.count);
        assert_eq!(snap.count, 1_000);
    }

    #[test]
    fn mean_matches_sum_over_count() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert!((h.snapshot().mean() - 15.0).abs() < f64::EPSILON);
        assert!(Histogram::new().snapshot().mean().abs() < f64::EPSILON);
    }
}
