//! Wall-clock span timing into a sink.

use crate::MetricsSink;
use std::time::Instant;

/// A drop-guard measuring one wall-clock span.
///
/// On drop, the elapsed time since [`SpanTimer::start`] is recorded —
/// in nanoseconds — as a histogram sample under the span's key.
/// Timers are for *coarse* spans (a sweep grid point, a pool job, a
/// whole run); per-trial timing would dominate the measured work.
///
/// # Examples
///
/// ```
/// use obs::{NoopSink, SpanTimer};
///
/// {
///     let _span = SpanTimer::start(&NoopSink, "sweep.point_ns");
///     // ... the timed work ...
/// } // recorded here
/// ```
pub struct SpanTimer<'a> {
    sink: &'a dyn MetricsSink,
    key: &'static str,
    started: Instant,
}

impl std::fmt::Debug for SpanTimer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTimer")
            .field("key", &self.key)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<'a> SpanTimer<'a> {
    /// Starts timing a span that will be recorded under `key`.
    #[must_use]
    pub fn start(sink: &'a dyn MetricsSink, key: &'static str) -> SpanTimer<'a> {
        SpanTimer {
            sink,
            key,
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the span started, saturating at
    /// `u64::MAX` (584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.sink.record(self.key, self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, NoopSink};

    #[derive(Default)]
    struct SpanCatcher(Histogram);

    impl MetricsSink for SpanCatcher {
        fn record(&self, key: &'static str, value: u64) {
            assert_eq!(key, "test.span_ns");
            self.0.record(value);
        }
    }

    #[test]
    fn drop_records_one_sample() {
        let sink = SpanCatcher::default();
        {
            let _span = SpanTimer::start(&sink, "test.span_ns");
            std::hint::black_box(0u64);
        }
        assert_eq!(sink.0.count(), 1);
    }

    #[test]
    fn elapsed_is_monotone() {
        let span = SpanTimer::start(&NoopSink, "test.span_ns");
        let a = span.elapsed_ns();
        std::hint::black_box([0u8; 64]);
        let b = span.elapsed_ns();
        assert!(b >= a);
    }
}
