//! Engine observability end to end: attach an `EngineMetrics` sink,
//! run a mixed workload (parallel estimation, crash faults, the dyn
//! baseline, an instrumented sweep), and export the audited counters
//! as an `engine-metrics/v1` JSON document.
//!
//! The headline property: metrics are *observational*. Every estimate
//! printed below is bit-identical to the same run without a sink, and
//! the RNG draw counts are exact — `trials × players × draws/player` —
//! not sampled.
//!
//! Run with: `cargo run --example engine_metrics [-- --out PATH]`
//! (default output: `results/engine_metrics.json`; CI validates the
//! document with `cargo xtask metrics-check`).

use nocomm::decision::{ObliviousAlgorithm, SingleThresholdAlgorithm};
use nocomm::rational::Rational;
use nocomm::simulator::{sweep_threshold_with_metrics, EngineMetrics, Simulation};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let out = output_path();
    let metrics = Arc::new(EngineMetrics::new());

    // One sink observes everything: a 4-thread engine, its worker
    // pool, and a threshold sweep reusing the same counters.
    let trials = 200_000u64;
    let sim = Simulation::new(trials, 42)
        .with_threads(4)
        .with_metrics(metrics.clone());

    let threshold =
        SingleThresholdAlgorithm::symmetric(3, Rational::ratio(622, 1000)).expect("valid β");
    let oblivious = ObliviousAlgorithm::fair(4);

    println!("engine_metrics: {trials} trials/run, 4 threads\n");
    println!("  threshold kernel   : {}", sim.run(&threshold, 1.0));
    println!("  oblivious kernel   : {}", sim.run(&oblivious, 1.0));
    println!(
        "  with crash faults  : {}",
        sim.run_with_crashes(&threshold, 1.0, 0.25)
    );
    println!("  dyn baseline       : {}", sim.run_dyn(&oblivious, 1.0));

    let sweep = sweep_threshold_with_metrics(3, 1.0, 16, 20_000, 7, metrics.clone())
        .expect("valid sweep parameters");
    println!("  sweep              : {} grid points", sweep.len());

    let snap = metrics.snapshot();
    println!("\naudited totals:");
    for (key, value) in snap.counters() {
        println!("  {key:<26} {value}");
    }
    println!(
        "  pool utilization       {:.1}%  (busy {} ms, idle {} ms)",
        snap.pool_utilization() * 100.0,
        snap.pool_busy_ns / 1_000_000,
        snap.pool_idle_ns / 1_000_000,
    );
    if snap.pool_job_ns.count > 0 {
        println!(
            "  mean pool job          {:.2} ms over {} jobs",
            snap.pool_job_ns.mean() / 1e6,
            snap.pool_job_ns.count
        );
    }

    // The conservation law the metrics must obey, checked live: the
    // four engine runs plus the 17 sweep runs each consume an exactly
    // predictable number of uniforms.
    let expected_draws = trials * 3 * 2   // threshold, crash-free
        + trials * 4 * 2                  // oblivious, crash-free
        + trials * 3 * 3                  // threshold with fault coins
        + trials * 4 * 2                  // dyn baseline
        + 17 * 20_000 * 3 * 2; // sweep grid points
    assert_eq!(snap.rng_draws, expected_draws, "draw conservation");
    println!("\ndraw conservation holds: {expected_draws} uniforms accounted for ✓");

    snap.write_json(&out).expect("write metrics JSON");
    println!("written: {}", out.display());
}

/// Output path: `--out PATH` if given, else `results/engine_metrics.json`.
fn output_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || PathBuf::from("results/engine_metrics.json"),
            PathBuf::from,
        )
}
