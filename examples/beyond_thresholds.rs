//! Beyond single thresholds: general interval rules and unequal bin
//! capacities.
//!
//! The paper's framework covers any rule that maps a player's input to
//! a bin through an arbitrary decision region. This example
//! (a) evaluates a genuinely non-threshold "middle-out" rule exactly,
//! (b) sweeps two-interval symmetric rules to see whether anything
//! beats the optimal single threshold at n = 3, δ = 1, and
//! (c) demonstrates unequal capacities (δ₀ ≠ δ₁).
//!
//! Run with: `cargo run --example beyond_thresholds`

use nocomm::decision::rules::{BinZeroSet, GeneralRule};
use nocomm::decision::{symmetric, Capacity};
use nocomm::rational::Rational;
use nocomm::simulator::Simulation;

fn r(n: i64, d: i64) -> Rational {
    Rational::ratio(n, d)
}

fn symmetric_rule(n: usize, set: &BinZeroSet) -> GeneralRule {
    GeneralRule::new(vec![set.clone(); n]).expect("n >= 2")
}

fn main() {
    let n = 3;
    let cap = Capacity::unit();

    // (a) A middle-out rule: small and large inputs to bin 0.
    let middle_out =
        BinZeroSet::new(vec![(r(0, 1), r(1, 3)), (r(2, 3), r(1, 1))]).expect("valid intervals");
    let rule = symmetric_rule(n, &middle_out);
    let exact = rule.winning_probability(&cap).expect("small n");
    let sim = Simulation::new(400_000, 77).run(&rule, 1.0);
    println!("middle-out rule [0,1/3] ∪ [2/3,1], n = {n}, δ = 1:");
    println!("  exact      {:.6}  ({})", exact.to_f64(), exact);
    println!("  simulated  {sim}");
    assert!(sim.agrees_with(exact.to_f64(), 4.5));

    // (b) Sweep symmetric two-interval rules [0,a] ∪ [b,1]: does any
    // beat the optimal single threshold?
    let best_threshold = symmetric::analyze(n, &cap)
        .expect("n >= 2")
        .maximize(&r(1, 1 << 40));
    println!(
        "\noptimal single threshold: β* ≈ {:.6}, P* ≈ {:.6}",
        best_threshold.argmax.to_f64(),
        best_threshold.value.to_f64()
    );

    let grid = 24i64;
    let mut best_two: Option<(Rational, Rational, Rational)> = None;
    for ai in 0..=grid {
        for bi in ai..=grid {
            let (a, b) = (r(ai, grid), r(bi, grid));
            let set = BinZeroSet::new(vec![
                (Rational::zero(), a.clone()),
                (b.clone(), Rational::one()),
            ])
            .expect("valid intervals");
            let p = symmetric_rule(n, &set)
                .winning_probability(&cap)
                .expect("small n");
            if best_two.as_ref().is_none_or(|(_, _, best)| &p > best) {
                best_two = Some((a, b, p));
            }
        }
    }
    let (a, b, p) = best_two.expect("non-empty grid");
    println!(
        "best two-interval rule on a {grid}x{grid} grid: [0,{a}] ∪ [{b},1] with P = {:.6}",
        p.to_f64()
    );
    if b >= Rational::one() || p <= best_threshold.value {
        println!("  → collapses to a single threshold: prefix rules win this family.");
    } else {
        println!("  → a genuine two-interval improvement over the best threshold!");
    }

    // (c) Unequal capacities: a big machine and a small one.
    println!("\nunequal capacities (n = {n}): bin 0 large (δ₀ = 3/2), bin 1 small (δ₁ = 1/2)");
    let big = Capacity::new(r(3, 2)).expect("positive");
    let small = Capacity::new(r(1, 2)).expect("positive");
    println!("{:>8} | {:>10}", "β", "P(win)");
    let mut best_beta = (Rational::zero(), Rational::zero());
    for k in 0..=10 {
        let beta = r(k, 10);
        let prefix = BinZeroSet::prefix(beta.clone()).expect("in range");
        let p = symmetric_rule(n, &prefix)
            .winning_probability_with(&big, &small)
            .expect("small n");
        if p > best_beta.1 {
            best_beta = (beta.clone(), p.clone());
        }
        println!("{:>8} | {:>10.6}", beta.to_string(), p.to_f64());
    }
    println!(
        "best grid β = {} — the big bin should take most of the load, so β is high",
        best_beta.0
    );
    assert!(best_beta.0 > r(1, 2));
}
