//! Rota's research problem: "Find a nice formula for the density of
//! n independent, uniformly distributed random variables."
//!
//! Lemma 2.5 of the paper answers it; this example evaluates the exact
//! density for uniforms on unequal boxes, prints it alongside the
//! classical Irwin–Hall special case, and validates both against a
//! histogram of simulated sums.
//!
//! Run with: `cargo run --example rota_density`

use nocomm::rational::Rational;
use nocomm::uniform_sums::{irwin_hall_pdf, BoxSum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Three uniforms on unequal intervals.
    let sides = vec![
        Rational::ratio(1, 2),
        Rational::one(),
        Rational::ratio(3, 2),
    ];
    let sum = BoxSum::new(sides.clone()).expect("positive sides");
    println!("density of U[0,1/2] + U[0,1] + U[0,3/2] (Lemma 2.5):\n");

    // Histogram from simulation for comparison.
    let mut rng = StdRng::seed_from_u64(2024);
    let samples = 2_000_000usize;
    let buckets = 30usize;
    let max = sum.support_max().to_f64();
    let mut hist = vec![0u64; buckets];
    let widths: Vec<f64> = sides.iter().map(Rational::to_f64).collect();
    for _ in 0..samples {
        let s: f64 = widths.iter().map(|&w| rng.gen_range(0.0..w)).sum();
        let b = ((s / max) * buckets as f64) as usize;
        hist[b.min(buckets - 1)] += 1;
    }

    println!(
        "{:>6} | {:>10} {:>10} | histogram",
        "t", "exact", "simulated"
    );
    let mut max_err: f64 = 0.0;
    for (b, count) in hist.iter().enumerate() {
        let mid = (b as f64 + 0.5) * max / buckets as f64;
        let t = Rational::ratio((mid * 1_000_000.0) as i64, 1_000_000);
        let exact = sum.pdf(&t).to_f64();
        let simulated = *count as f64 * buckets as f64 / (samples as f64 * max);
        max_err = max_err.max((exact - simulated).abs());
        let bar = "#".repeat((exact * 40.0) as usize);
        println!("{mid:>6.3} | {exact:>10.6} {simulated:>10.6} | {bar}");
    }
    println!("\nmax |exact − simulated| over buckets: {max_err:.4}");
    assert!(max_err < 0.02, "density formula disagrees with simulation");

    // Irwin-Hall special case: the elegant closed form of Cor. 2.6.
    println!("\nIrwin-Hall density of 4 standard uniforms at selected points:");
    for (num, den) in [(1i64, 2i64), (1, 1), (3, 2), (2, 1), (3, 1), (7, 2)] {
        let t = Rational::ratio(num, den);
        println!("  f_4({}) = {}", t, irwin_hall_pdf(4, &t));
    }
    println!("\nLemma 2.5 validated against simulation ✓");
}
