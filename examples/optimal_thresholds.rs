//! Reproduces the paper's Section 5.2 case analyses symbolically:
//! exact piecewise polynomials for `P(β)`, per-piece optimality
//! conditions, and exact optima — for the paper's two worked cases
//! plus two sizes the paper left open.
//!
//! Run with: `cargo run --example optimal_thresholds`

use nocomm::decision::{symmetric, Capacity};
use nocomm::rational::Rational;

fn report(n: usize, cap: &Capacity, note: &str) {
    println!("===== n = {n}, {cap} {note}=====");
    let curve = symmetric::analyze(n, cap).expect("n >= 2");
    println!("break-points: {:?}", curve.breakpoints());
    for (i, piece) in curve.pieces().iter().enumerate() {
        println!(
            "  P(β) on ({}, {:>5}] = {}",
            curve.breakpoints()[i],
            curve.breakpoints()[i + 1].to_string(),
            piece
        );
    }
    println!("optimality conditions (zero the derivative per piece):");
    for ((lo, hi), dp) in symmetric::optimality_conditions(n, cap).expect("n >= 2") {
        println!("  on ({lo}, {hi}]:  {dp} = 0");
    }
    let best = curve.maximize(&Rational::ratio(1, 1_000_000_000_000));
    println!(
        "optimum: β* ≈ {:.10} in piece {}, P* = {:.10}\n",
        best.argmax.to_f64(),
        best.piece,
        best.value.to_f64()
    );
}

fn main() {
    // The paper's Section 5.2.1: settles the P&Y conjecture.
    report(3, &Capacity::unit(), "(paper §5.2.1) ");
    // The paper's Section 5.2.2.
    report(
        4,
        &Capacity::new(Rational::ratio(4, 3)).expect("positive"),
        "(paper §5.2.2) ",
    );
    // Beyond the paper: the next two sizes under the same δ = n/3 scaling.
    report(5, &Capacity::proportional(5, 3), "(beyond the paper) ");
    report(6, &Capacity::proportional(6, 3), "(beyond the paper) ");

    println!("non-uniformity: the optimal β* above differs across n —");
    println!("no single threshold is optimal for every system size.");
}
