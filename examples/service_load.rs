//! Load-generate against an in-process `nocomm-service` daemon and
//! record sustained throughput into `results/BENCH_service.json`.
//!
//! The box this runs on has one CPU and a bounded fd budget, so raw
//! concurrent sockets cannot reach the target scale — instead the
//! generator uses a **virtual-client** model: 10k+ simulated clients
//! (each with its own id space and deterministic workload) are
//! multiplexed onto a few dozen physical connections, each driven by
//! one thread. Both numbers land in the benchmark document.
//!
//! The workload is cache-realistic: the virtual clients hammer a
//! small family of analytic queries (hits after first touch per
//! shape), a minority sweep the β curve, and a sprinkling run
//! pooled Monte-Carlo jobs. The document records sustained qps,
//! client-observed p50/p99 latency (derived from an `obs::Histogram`
//! in power-of-two resolution), the daemon's cache counters, and the
//! cache-hit-vs-cold-evaluation speedup at n = 8 that justifies the
//! read-through cache.
//!
//! Run with: `cargo run --release --example service_load
//! [-- --out PATH --virtual N --connections C --requests R]`

use nocomm::decision::winning_probability_threshold_in;
use nocomm::obs::{Histogram, HistogramSnapshot};
use nocomm::service::{
    AnalyticCache, CacheStatus, Client, Outcome, Request, RuleFamily, RuleSpec, Service,
    ServiceConfig,
};
use nocomm::uniform_sums::EvalContext;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Symmetric β values the analytic traffic cycles through (per n, so
/// distinct n share nothing but the protocol path).
const BETAS: [f64; 4] = [0.5, 0.622, 0.375, 0.7];

struct Options {
    out: PathBuf,
    virtual_clients: usize,
    connections: usize,
    requests_per_client: usize,
}

fn options() -> Options {
    let mut out = Options {
        out: PathBuf::from("results/BENCH_service.json"),
        virtual_clients: 10_240,
        connections: 32,
        requests_per_client: 4,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let v = it.next().expect("option needs a value");
        match arg.as_str() {
            "--out" => out.out = PathBuf::from(v),
            "--virtual" => out.virtual_clients = v.parse().expect("bad --virtual"),
            "--connections" => out.connections = v.parse().expect("bad --connections"),
            "--requests" => out.requests_per_client = v.parse().expect("bad --requests"),
            other => panic!("unknown option {other:?}"),
        }
    }
    out
}

/// The deterministic request mix of virtual client `client`, request
/// number `r`.
fn request_for(client: usize, r: usize) -> Request {
    if client.is_multiple_of(64) && r == 0 {
        // A sprinkling of pooled Monte-Carlo work: 40k trials spans
        // three 16,384-trial batches, so these requests really do
        // fan out onto the daemon's shared worker pool.
        return Request::Simulate {
            delta: 1.0,
            trials: 40_000,
            seed: client as u64,
            rule: RuleSpec::threshold(vec![0.622; 3]),
        };
    }
    if client.is_multiple_of(16) && r == 1 {
        return Request::Sweep {
            n: 3,
            delta: 1.0,
            grid: 64,
        };
    }
    if client == 1 && r == 0 {
        return Request::Optimal {
            family: RuleFamily::Oblivious,
            n: 3,
            delta: 1.0,
        };
    }
    // The bulk: analytic P_win over a small shape family, n = 3..=8.
    let n = 3 + (client + r) % 6;
    let beta = BETAS[(client / 6 + r) % BETAS.len()];
    Request::PWin {
        delta: 1.0,
        rule: RuleSpec::threshold(vec![beta; n]),
    }
}

/// Drives one physical connection through the workloads of its
/// assigned virtual clients; returns (requests, cache_hits) observed.
fn drive(
    addr: std::net::SocketAddr,
    clients: std::ops::Range<usize>,
    requests_per_client: usize,
    latency: &Histogram,
) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("load generator cannot connect");
    let mut sent = 0u64;
    let mut hits = 0u64;
    for vc in clients {
        for r in 0..requests_per_client {
            let request = request_for(vc, r);
            let started = Instant::now();
            let response = client.roundtrip(request).expect("round trip failed");
            latency.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            sent += 1;
            let outcome = response.outcome.expect("query failed");
            match outcome {
                Outcome::PWin { cache, .. }
                | Outcome::Optimal { cache, .. }
                | Outcome::Sweep { cache, .. } => {
                    if cache == CacheStatus::Hit {
                        hits += 1;
                    }
                }
                Outcome::Simulate { trials, .. } => assert_eq!(trials, 40_000),
                _ => unreachable!("nobody asks for shutdown here"),
            }
        }
    }
    (sent, hits)
}

/// The smallest occupied bucket bound covering quantile `q`.
fn quantile_le(snapshot: &HistogramSnapshot, q: f64) -> u64 {
    let target = (q * snapshot.count as f64).ceil() as u64;
    let mut seen = 0;
    for bucket in &snapshot.buckets {
        seen += bucket.count;
        if seen >= target {
            return bucket.le;
        }
    }
    snapshot.buckets.last().map_or(0, |b| b.le)
}

/// Cache-hit vs cold-evaluation speedup for the asymmetric n = 8
/// analytic query (256 decision vectors per cold evaluation).
fn n8_speedup() -> (f64, f64) {
    let thresholds: Vec<f64> = (0..8).map(|i| 0.45 + 0.03 * i as f64).collect();
    let rule = RuleSpec::threshold(thresholds.clone());

    let cold_runs = 5;
    let started = Instant::now();
    for _ in 0..cold_runs {
        let mut ctx = EvalContext::new();
        winning_probability_threshold_in(&mut ctx, &thresholds, &1.0).expect("valid rule");
    }
    let cold_ns = started.elapsed().as_nanos() as f64 / f64::from(cold_runs);

    let cache = AnalyticCache::new();
    let (_, status) = cache.pwin(&rule, 1.0).expect("valid rule");
    assert_eq!(status, CacheStatus::Miss);
    let hit_runs = 10_000u32;
    let started = Instant::now();
    for _ in 0..hit_runs {
        let (_, status) = cache.pwin(&rule, 1.0).expect("valid rule");
        assert_eq!(status, CacheStatus::Hit);
    }
    let hit_ns = started.elapsed().as_nanos() as f64 / f64::from(hit_runs);
    (cold_ns, hit_ns)
}

fn main() {
    let opts = options();
    let daemon = Service::start(ServiceConfig::default()).expect("daemon start");
    let addr = daemon.local_addr();
    println!(
        "service_load: {} virtual clients over {} connections, {} requests each, daemon at {addr}",
        opts.virtual_clients, opts.connections, opts.requests_per_client
    );

    let latency = Arc::new(Histogram::new());
    let per_connection = opts.virtual_clients.div_ceil(opts.connections);
    let started = Instant::now();
    let drivers: Vec<_> = (0..opts.connections)
        .map(|c| {
            let latency = latency.clone();
            let lo = c * per_connection;
            let hi = ((c + 1) * per_connection).min(opts.virtual_clients);
            let requests_per_client = opts.requests_per_client;
            std::thread::spawn(move || drive(addr, lo..hi, requests_per_client, &latency))
        })
        .collect();
    let mut requests = 0u64;
    let mut observed_hits = 0u64;
    for driver in drivers {
        let (sent, hits) = driver.join().expect("driver thread panicked");
        requests += sent;
        observed_hits += hits;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = requests as f64 / elapsed;

    let snapshot = latency.snapshot();
    let p50 = quantile_le(&snapshot, 0.50);
    let p99 = quantile_le(&snapshot, 0.99);
    let frame = daemon.metrics_frame();
    let engine = daemon.metrics().engine_snapshot();
    let (cold_ns, hit_ns) = n8_speedup();
    daemon.shutdown();

    println!("  {requests} requests in {elapsed:.2}s = {qps:.0} qps sustained");
    println!(
        "  latency p50 ≤ {}µs, p99 ≤ {}µs, mean {:.0}µs (client-observed)",
        p50 / 1_000,
        p99 / 1_000,
        snapshot.mean() / 1_000.0
    );
    println!(
        "  daemon cache: {} hits / {} misses; engine: {} runs, {} batches",
        frame.cache_hits, frame.cache_misses, frame.sim_runs, frame.sim_batches
    );
    println!(
        "  n = 8 analytic: cold {:.0}ns vs cache hit {:.0}ns = {:.0}x",
        cold_ns,
        hit_ns,
        cold_ns / hit_ns
    );

    let mut doc = String::from("{\n");
    let _ = writeln!(doc, "  \"bench\": \"service_load\",");
    let _ = writeln!(doc, "  \"virtual_clients\": {},", opts.virtual_clients);
    let _ = writeln!(doc, "  \"physical_connections\": {},", opts.connections);
    let _ = writeln!(doc, "  \"requests\": {requests},");
    let _ = writeln!(doc, "  \"duration_s\": {elapsed:?},");
    let _ = writeln!(doc, "  \"qps\": {:?},", (qps * 10.0).round() / 10.0);
    let _ = writeln!(
        doc,
        "  \"latency_ns\": {{\"p50_le\": {p50}, \"p99_le\": {p99}, \"mean\": {:?}}},",
        snapshot.mean().round()
    );
    let _ = writeln!(
        doc,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"observed_hit_responses\": {observed_hits}}},",
        frame.cache_hits, frame.cache_misses
    );
    let _ = writeln!(
        doc,
        "  \"engine\": {{\"runs\": {}, \"batches\": {}, \"trials\": {}, \"pool_jobs\": {}}},",
        engine.runs, engine.batches, engine.trials, engine.pool_jobs
    );
    let _ = writeln!(
        doc,
        "  \"n8_analytic\": {{\"cold_ns\": {:?}, \"cache_hit_ns\": {:?}, \"speedup\": {:?}}}",
        cold_ns.round(),
        hit_ns.round(),
        (cold_ns / hit_ns).round()
    );
    doc.push_str("}\n");
    std::fs::write(&opts.out, doc).expect("write benchmark document");
    println!("  wrote {}", opts.out.display());
}
