//! The price of no communication: compare the best silent algorithms
//! against the full-information (omniscient coordinator) upper bound.
//!
//! The paper's motivation is the economic value of information in a
//! distributed system; this example measures it. For each system size
//! (with the paper's δ = n/3 scaling) it reports the best oblivious,
//! best symmetric-threshold, and best deterministic-partition winning
//! probabilities — all exact — against a Monte-Carlo estimate of how
//! often *any* assignment of the realized inputs could have won.
//!
//! Run with: `cargo run --release --example price_of_silence`

use nocomm::decision::{oblivious, symmetric, Capacity};
use nocomm::rational::Rational;
use nocomm::simulator::full_information_win_rate;

fn main() {
    let tol = Rational::ratio(1, 1 << 40);
    println!("two bins of capacity δ = n/3; inputs ~ U[0,1]\n");
    println!(
        "{:>3} | {:>10} {:>10} {:>10} | {:>12} | {:>8}",
        "n", "oblivious", "threshold", "partition", "omniscient", "price"
    );
    println!("{}", "-".repeat(68));
    for n in 2..=10usize {
        let cap = Capacity::proportional(n, 3);
        let coin = oblivious::optimal_value(n, &cap).expect("n >= 2").to_f64();
        let threshold = symmetric::analyze(n, &cap)
            .expect("n >= 2")
            .maximize(&tol)
            .value
            .to_f64();
        let partition = oblivious::best_deterministic_split(n, &cap)
            .expect("n >= 2")
            .value
            .to_f64();
        let omniscient = full_information_win_rate(n, cap.to_f64(), 300_000, 21 + n as u64);
        let best_silent = coin.max(threshold).max(partition);
        let price = omniscient.estimate - best_silent;
        println!(
            "{:>3} | {:>10.6} {:>10.6} {:>10.6} | {:>12} | {:>8.4}",
            n,
            coin,
            threshold,
            partition,
            format!(
                "{:.4}±{:.4}",
                omniscient.estimate,
                omniscient.ci95_half_width()
            ),
            price
        );
        assert!(
            omniscient.estimate + 4.0 * omniscient.std_error >= best_silent,
            "an algorithm cannot beat the omniscient bound"
        );
    }
    println!("\n'price' = omniscient − best silent algorithm: what full");
    println!("information would buy. At n = 2 the deterministic partition");
    println!("is already optimal (price 0, up to Monte-Carlo noise); from");
    println!("n = 3 on, silence genuinely costs winning probability.");
}
