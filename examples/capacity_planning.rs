//! Capacity planning: how big must the bins be to win with a target
//! probability, and how much slack do crash faults buy back?
//!
//! Uses exact evaluation inside a bisection over δ, then a crash-fault
//! sensitivity table computed from the exact binomial mixture.
//!
//! Run with: `cargo run --example capacity_planning`

use nocomm::decision::{
    faults, oblivious, winning_probability_threshold, Capacity, SingleThresholdAlgorithm,
};
use nocomm::rational::Rational;

/// Smallest δ (within `tol`) for which `win(δ) >= target`.
fn minimal_capacity(
    win: impl Fn(&Capacity) -> Rational,
    target: &Rational,
    n: usize,
    tol: &Rational,
) -> Rational {
    let mut lo = Rational::zero();
    let mut hi = Rational::integer(n as i64); // δ = n always wins
    while &(&hi - &lo) > tol {
        let mid = lo.midpoint(&hi);
        let cap = Capacity::new(mid.clone()).expect("positive mid");
        if win(&cap) >= *target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn main() {
    let n = 5;
    let beta = Rational::ratio(5, 8);
    let threshold = SingleThresholdAlgorithm::symmetric(n, beta.clone()).expect("valid threshold");
    let tol = Rational::ratio(1, 1 << 20);

    println!("capacity needed for n = {n} dispatchers (jobs ~ U[0,1])\n");
    println!(
        "{:>8} | {:>12} | {:>12}",
        "target", "fair coin δ", "β=5/8 δ"
    );
    for pct in [50i64, 75, 90, 99] {
        let target = Rational::ratio(pct, 100);
        let coin_delta = minimal_capacity(
            |cap| oblivious::optimal_value(n, cap).expect("n >= 2"),
            &target,
            n,
            &tol,
        );
        let thr_delta = minimal_capacity(
            |cap| winning_probability_threshold(&threshold, cap).expect("n <= 22"),
            &target,
            n,
            &tol,
        );
        println!(
            "{:>7}% | {:>12.4} | {:>12.4}",
            pct,
            coin_delta.to_f64(),
            thr_delta.to_f64()
        );
    }

    // Crash-fault sensitivity: with flaky dispatchers the same δ buys
    // a higher winning probability (jobs get dropped).
    println!("\ncrash-fault sensitivity at δ = 5/3, threshold β = 5/8 (exact):");
    println!("{:>8} | {:>10}", "p_crash", "P(win)");
    let cap = Capacity::proportional(n, 3);
    for k in 0..=5 {
        let p_crash = Rational::ratio(k, 10);
        let p =
            faults::threshold_with_crashes(&threshold, &cap, &p_crash).expect("valid probability");
        println!("{:>8} | {:>10.6}", p_crash.to_string(), p.to_f64());
    }

    // Sanity: the fault-free entry matches the direct closed form.
    let direct = winning_probability_threshold(&threshold, &cap).expect("n <= 22");
    let mixture =
        faults::threshold_with_crashes(&threshold, &cap, &Rational::zero()).expect("valid");
    assert_eq!(direct, mixture);
    println!("\nfault-free mixture equals the direct closed form exactly ✓");
}
