//! The paper's motivating load-balancing scenario: `n` independent
//! dispatchers each receive a job of random size and must route it to
//! one of two machines of capacity `δ = n/3`, without talking to each
//! other. Which no-communication policy keeps both machines from
//! overflowing most often?
//!
//! Compares, for n = 2..8 (exactly, then by simulation):
//!   * the fair oblivious coin (Theorem 4.3's uniform optimum),
//!   * the optimal symmetric threshold rule (Section 5),
//!   * the best deterministic partition (boundary corner).
//!
//! Run with: `cargo run --example load_balancing`

use nocomm::decision::{
    oblivious, symmetric, Capacity, ObliviousAlgorithm, SingleThresholdAlgorithm,
};
use nocomm::rational::Rational;
use nocomm::simulator::Simulation;

fn main() {
    println!("two machines, capacity δ = n/3 each, jobs ~ U[0,1]\n");
    println!(
        "{:>3} | {:>10} {:>10} {:>10} | {:>10} {:>8} | winner",
        "n", "fair coin", "threshold", "partition", "β*", "split"
    );
    println!("{}", "-".repeat(78));

    let tol = Rational::ratio(1, 1 << 40);
    for n in 2..=8usize {
        let cap = Capacity::proportional(n, 3);

        let coin = oblivious::optimal_value(n, &cap).expect("valid n");
        let curve = symmetric::analyze(n, &cap).expect("valid n");
        let best_threshold = curve.maximize(&tol);
        let split = oblivious::best_deterministic_split(n, &cap).expect("valid n");

        let winner = if split.value.to_f64() >= best_threshold.value.to_f64() && split.value >= coin
        {
            "partition"
        } else if best_threshold.value > coin {
            "threshold"
        } else {
            "fair coin"
        };
        println!(
            "{:>3} | {:>10.6} {:>10.6} {:>10.6} | {:>10.6} {:>5}/{:<2} | {}",
            n,
            coin.to_f64(),
            best_threshold.value.to_f64(),
            split.value.to_f64(),
            best_threshold.argmax.to_f64(),
            split.bin0_size,
            n - split.bin0_size,
            winner
        );
    }

    println!("\nsimulation spot-check at n = 6 (500k rounds):");
    let n = 6;
    let cap = Capacity::proportional(n, 3);
    let sim = Simulation::new(500_000, 7);

    let coin_rule = ObliviousAlgorithm::fair(n);
    let coin_exact = oblivious::optimal_value(n, &cap).expect("valid n").to_f64();
    let coin_sim = sim.run(&coin_rule, cap.to_f64());
    println!("  fair coin: exact {coin_exact:.6}, simulated {coin_sim}");
    assert!(coin_sim.agrees_with(coin_exact, 4.0));

    let curve = symmetric::analyze(n, &cap).expect("valid n");
    let best = curve.maximize(&tol);
    let thr_rule = SingleThresholdAlgorithm::symmetric(n, best.argmax.clone()).expect("β in [0,1]");
    let thr_sim = sim.run(&thr_rule, cap.to_f64());
    println!(
        "  threshold β* = {:.6}: exact {:.6}, simulated {}",
        best.argmax.to_f64(),
        best.value.to_f64(),
        thr_sim
    );
    assert!(thr_sim.agrees_with(best.value.to_f64(), 4.0));

    println!("\nexact values confirmed by simulation ✓");
}
