//! Structural demo: each player really is a separate thread that sees
//! only its own input — the no-communication constraint enforced by
//! the process architecture, not by convention.
//!
//! Run with: `cargo run --example distributed_agents`

use nocomm::decision::{
    symmetric, winning_probability_threshold, Capacity, SingleThresholdAlgorithm,
};
use nocomm::rational::Rational;
use nocomm::simulator::{DistributedSimulation, Simulation};
use std::time::Instant;

fn main() {
    let n = 5;
    let cap = Capacity::proportional(n, 3);
    let tol = Rational::ratio(1, 1 << 40);

    // Find the optimal symmetric threshold exactly, then deploy it on
    // a fleet of thread-agents.
    let curve = symmetric::analyze(n, &cap).expect("n >= 2");
    let best = curve.maximize(&tol);
    println!(
        "n = {n}, {cap}: optimal symmetric threshold β* ≈ {:.6}",
        best.argmax.to_f64()
    );

    let rule = SingleThresholdAlgorithm::symmetric(n, best.argmax.clone()).expect("β in [0,1]");
    let exact = winning_probability_threshold(&rule, &cap)
        .expect("exact evaluation")
        .to_f64();

    println!("\nrunning {n} agents as isolated threads (channel-fed, 20k rounds)...");
    let start = Instant::now();
    let dist = DistributedSimulation::new(20_000, 11).run(&rule, cap.to_f64());
    let dist_elapsed = start.elapsed();

    println!("running batched engine for comparison (2M rounds)...");
    let start = Instant::now();
    let batched = Simulation::new(2_000_000, 12).run(&rule, cap.to_f64());
    let batched_elapsed = start.elapsed();

    println!("\n              {:>28} {:>12}", "estimate", "time");
    println!("exact         {exact:>28.6} {:>12}", "-");
    println!(
        "agent threads {:>28} {:>10.0}ms",
        dist.to_string(),
        dist_elapsed.as_millis()
    );
    println!(
        "batched       {:>28} {:>10.0}ms",
        batched.to_string(),
        batched_elapsed.as_millis()
    );

    assert!(dist.agrees_with(exact, 5.0), "distributed estimate off");
    assert!(batched.agrees_with(exact, 5.0), "batched estimate off");
    println!("\nboth architectures agree with the exact value ✓");
}
