//! Quickstart: exact winning probabilities, optimal algorithms, and
//! Monte-Carlo validation in a dozen lines each.
//!
//! Run with: `cargo run --example quickstart`

use nocomm::decision::{
    oblivious, symmetric, winning_probability_threshold, Capacity, ObliviousAlgorithm,
    SingleThresholdAlgorithm,
};
use nocomm::rational::Rational;
use nocomm::simulator::Simulation;

fn main() {
    let delta = Capacity::unit();
    let tol = Rational::ratio(1, 1_000_000_000);

    println!("== The model ==");
    println!("n players, each with a private x_i ~ U[0,1], pick one of two");
    println!("bins of capacity δ with no communication; win iff neither bin");
    println!("overflows.\n");

    // --- Oblivious: ignore your input, flip an α-coin. -------------------
    let fair = ObliviousAlgorithm::fair(3);
    let opt = oblivious::optimal(3, &delta).expect("n >= 2");
    println!("== Oblivious (n = 3, δ = 1) ==");
    println!("P(α) as an exact polynomial:  {}", opt.polynomial);
    println!(
        "optimal symmetric α = {} with P = {} ≈ {:.6}",
        opt.alpha,
        opt.value,
        opt.value.to_f64()
    );

    // --- Non-oblivious: threshold your own input. ------------------------
    println!("\n== Single-threshold (n = 3, δ = 1) ==");
    let curve = symmetric::analyze(3, &delta).expect("n >= 2");
    for (i, piece) in curve.pieces().iter().enumerate() {
        println!(
            "P(β) on ({}, {}]:  {}",
            curve.breakpoints()[i],
            curve.breakpoints()[i + 1],
            piece
        );
    }
    let best = curve.maximize(&tol);
    println!(
        "optimal β* ≈ {:.9}  (exactly 1 − √(1/7)), P* ≈ {:.9}",
        best.argmax.to_f64(),
        best.value.to_f64()
    );

    // --- Exact evaluation of an arbitrary asymmetric algorithm. ----------
    let custom = SingleThresholdAlgorithm::new(vec![
        Rational::ratio(1, 2),
        Rational::ratio(2, 3),
        Rational::ratio(3, 5),
    ])
    .expect("valid thresholds");
    let p = winning_probability_threshold(&custom, &delta).expect("exact");
    println!(
        "\ncustom thresholds (1/2, 2/3, 3/5): P = {} ≈ {:.6}",
        p,
        p.to_f64()
    );

    // --- Cross-check the closed forms by simulation. ---------------------
    println!("\n== Monte-Carlo validation (1M rounds each) ==");
    let sim = Simulation::new(1_000_000, 42);
    let fair_report = sim.run(&fair, 1.0);
    println!(
        "oblivious fair coin:   exact {:.6}  simulated {}",
        opt.value.to_f64(),
        fair_report
    );
    let custom_report = sim.run(&custom, 1.0);
    println!(
        "custom thresholds:     exact {:.6}  simulated {}",
        p.to_f64(),
        custom_report
    );
    assert!(fair_report.agrees_with(opt.value.to_f64(), 4.0));
    assert!(custom_report.agrees_with(p.to_f64(), 4.0));
    println!("\nall closed forms within 4σ of simulation ✓");
}
