//! Fault tolerance end to end: run the engine under a seeded
//! [`ChaosPlan`] — worker panics, poisoned RNG refills, stragglers,
//! and an injected worker-thread death — and prove the recovered run
//! is **bit-equal** to the fault-free run at the same parameters.
//!
//! The headline property: recovery is invisible in the numbers. Each
//! batch's RNG stream is a pure function of `(seed, batch)`, so a
//! batch lost to a dead worker or a panicking job re-executes
//! identically, and the only trace of the chaos is in the recovery
//! counters.
//!
//! Run with: `cargo run --example chaos_smoke [-- --out PATH]`
//! (default output: `results/chaos_smoke.json`; CI validates the
//! document with `cargo xtask chaos-check`).

use nocomm::decision::SingleThresholdAlgorithm;
use nocomm::rational::Rational;
use nocomm::simulator::{ChaosPlan, EngineMetrics, Simulation, RNG_STREAM_VERSION};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let out = output_path();

    let trials = 60_000u64;
    let batch = 2_000u64;
    let batches = trials / batch;
    let seed = 7u64;
    let delta = 1.0;
    let rule = SingleThresholdAlgorithm::symmetric(3, Rational::ratio(5, 8)).expect("valid β");

    println!("chaos_smoke: {trials} trials, {batches} batches, 4 threads, seed {seed}\n");

    // The control: the same engine configuration with no faults.
    let fault_free = Simulation::new(trials, seed)
        .with_batch_size(batch)
        .with_threads(4)
        .run(&rule, delta);
    println!("  fault-free : {fault_free}");

    // The chaotic run: six seeded faults across the 30 batches (the
    // kinds cycle panic → poisoned refill → straggler) plus one
    // injected worker-thread death for the supervisor to absorb.
    let metrics = Arc::new(EngineMetrics::new());
    let plan = ChaosPlan::from_seed(seed, batches, 6).with_worker_exits(1);
    let chaotic = Simulation::new(trials, seed)
        .with_batch_size(batch)
        .with_threads(4)
        .with_metrics(metrics.clone())
        .with_chaos(plan)
        .run(&rule, delta);
    println!("  chaotic    : {chaotic}");

    assert_eq!(
        fault_free, chaotic,
        "recovery must be bit-identical to the fault-free run"
    );

    let snap = metrics.snapshot();
    println!("\nrecovery ledger:");
    println!("  faults injected    {}", snap.chaos_faults);
    println!("  batches recovered  {}", snap.recovered_batches);
    println!("  workers respawned  {}", snap.pool_respawns);
    assert!(snap.chaos_faults > 0, "the plan must actually inject");
    assert!(
        snap.recovered_batches > 0,
        "at least one batch must take the recovery path"
    );

    let document = format!(
        "{{\n  \"schema\": \"chaos-smoke/v1\",\n  \"rng_stream_version\": {},\n  \
         \"seed\": {},\n  \
         \"fault_free\": {{\"wins\": {}, \"trials\": {}}},\n  \
         \"chaotic\": {{\"wins\": {}, \"trials\": {}}},\n  \
         \"recoveries\": {{\"chaos_faults\": {}, \"recovered_batches\": {}, \
         \"pool_respawns\": {}}}\n}}\n",
        RNG_STREAM_VERSION,
        seed,
        fault_free.wins,
        fault_free.trials,
        chaotic.wins,
        chaotic.trials,
        snap.chaos_faults,
        snap.recovered_batches,
        snap.pool_respawns,
    );
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out, document).expect("write chaos smoke JSON");
    println!(
        "\nbit-identity under chaos holds ✓\nwritten: {}",
        out.display()
    );
}

/// Output path: `--out PATH` if given, else `results/chaos_smoke.json`.
fn output_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("results/chaos_smoke.json"), PathBuf::from)
}
