#!/usr/bin/env sh
# The full local gate, identical to .github/workflows/ci.yml:
#   fmt -> static analyzer -> examples build -> tests (incl. doc-tests)
#   -> tests with hard invariants -> bench smoke -> bench check
#   -> metrics smoke -> shard smoke -> service smoke -> table check
#   -> analyze smoke (runtime budget).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo xtask analyze"
cargo run --package xtask --quiet -- analyze

echo "==> cargo build (examples)"
cargo build --workspace --examples

echo "==> cargo test (workspace)"
cargo test --quiet --workspace

echo "==> cargo test (doc-tests)"
cargo test --quiet --workspace --doc

echo "==> cargo test (checked invariants)"
cargo test --quiet --workspace --features checked-invariants

echo "==> bench smoke (simulator_throughput)"
# One short iteration: keeps the bench code and its JSON emission
# compiling and running without paying for a full measurement.
cargo bench --package bench --bench simulator_throughput -- --smoke

echo "==> bench check (speedup regression gate)"
# A short paired measurement to a scratch path, gated against the
# committed reference: every committed row must be present and within
# the tolerance band (fresh >= committed - max(0.25 x committed, 0.15)).
cargo bench --package bench --bench simulator_throughput -- --quick
cargo run --package xtask --quiet -- bench-check \
    "${TMPDIR:-/tmp}/BENCH_simulator_throughput.quick.json" \
    results/BENCH_simulator_throughput.json

echo "==> metrics smoke (engine_metrics + metrics-check)"
# Exercises the observability path end to end: the example runs a
# metered workload (its internal draw-conservation assert must hold),
# then the exported JSON must satisfy the engine-metrics/v1 checker.
metrics_out="${TMPDIR:-/tmp}/engine_metrics.ci.json"
cargo run --release --quiet --example engine_metrics -- --out "$metrics_out"
cargo run --package xtask --quiet -- metrics-check "$metrics_out"
rm -f "$metrics_out"

echo "==> shard smoke (nocomm-shard + shard-check)"
# Proves crash-surviving orchestration end to end: a fault-free and a
# chaos-injected (kill + stall + corrupt) multi-process sweep must
# both merge byte-identically to the single-process baseline, and the
# shard-smoke/v1 report must satisfy the checker — as must the
# committed artifact. The build is paid untimed; the smoke itself
# must finish within 10s.
cargo build --release --quiet --package orchestrator --bin nocomm-shard
shard_out="${TMPDIR:-/tmp}/shard_smoke.ci.json"
start=$(date +%s)
cargo run --release --quiet --package orchestrator --bin nocomm-shard -- --smoke --out "$shard_out"
elapsed=$(( $(date +%s) - start ))
echo "shard smoke: ${elapsed}s"
if [ "$elapsed" -ge 10 ]; then
    echo "shard smoke: exceeded the 10s runtime budget" >&2
    exit 1
fi
cargo run --package xtask --quiet -- shard-check "$shard_out"
cargo run --package xtask --quiet -- shard-check results/shard_smoke.json
rm -f "$shard_out"

echo "==> service smoke (daemon round trip)"
# Starts the query daemon on an ephemeral port and round-trips one
# query of each kind (pwin, optimal, sweep, threshold, simulate,
# shutdown), checking answers against direct library calls. The build
# is paid untimed; the smoke itself must finish within 5s.
cargo build --release --quiet --bin nocomm-service
start=$(date +%s)
cargo run --release --quiet --bin nocomm-service -- --smoke
elapsed=$(( $(date +%s) - start ))
echo "service smoke: ${elapsed}s"
if [ "$elapsed" -ge 5 ]; then
    echo "service smoke: exceeded the 5s runtime budget" >&2
    exit 1
fi

echo "==> table check (certified threshold table)"
# Validates the committed certified-threshold artifact — schema,
# contiguity, enclosure widths — and spot-checks rows against a fresh
# derivative sign test. The build is paid untimed; the check itself
# must finish within 5s.
cargo build --release --quiet --package xtask
start=$(date +%s)
cargo run --release --quiet --package xtask -- table-check
elapsed=$(( $(date +%s) - start ))
echo "table check: ${elapsed}s"
if [ "$elapsed" -ge 5 ]; then
    echo "table check: exceeded the 5s runtime budget" >&2
    exit 1
fi

echo "==> analyze smoke (runtime budget)"
# The analyzer must stay cheap enough to run on every push: a second
# invocation (binary already built above) has to finish within 5s.
start=$(date +%s)
cargo run --package xtask --quiet -- analyze
elapsed=$(( $(date +%s) - start ))
echo "analyze smoke: ${elapsed}s"
if [ "$elapsed" -ge 5 ]; then
    echo "analyze smoke: exceeded the 5s runtime budget" >&2
    exit 1
fi

echo "ci: all gates passed"
