#!/usr/bin/env sh
# The full local gate, identical to .github/workflows/ci.yml:
#   fmt -> repo lints -> tests -> tests with hard invariants.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo xtask lint"
cargo run --package xtask --quiet -- lint

echo "==> cargo test (workspace)"
cargo test --quiet --workspace

echo "==> cargo test (checked invariants)"
cargo test --quiet --workspace --features checked-invariants

echo "ci: all gates passed"
